// Package segment implements the cold tier behind the store's hot
// in-memory window ring: immutable, checksummed, single-file archives
// of closed signature windows. When the ring evicts a window the store
// compacts it into a segment file instead of dropping it, so History,
// windowed Search and persistence queries keep reaching arbitrarily far
// back while RAM stays bounded by Capacity.
//
// A segment file is append-written once and never modified:
//
//	graphsig-segment v1
//	<window block>            (core.WriteSignatureSet text, one per window)
//	...
//	toc <n>
//	window <idx> <scheme> <offset> <size> <crc32>
//	...
//	label "10.0.0.1" <idx> ...
//	...
//	end <tocOffset> <crc32>
//
// Window blocks reuse the established signature text codec, so a block
// carved out of a segment is directly consumable by sigtool. The
// trailing TOC records each block's byte offset, size and CRC32, plus a
// label→windows index so per-label lookups seek straight to the blocks
// that matter instead of scanning the whole file. The final `end` line
// carries the TOC's offset and a CRC32 of every preceding byte — the
// same self-checksum discipline as the snapshot v2 manifest — so a torn
// tail or a flipped byte anywhere is detected at open time.
//
// Durability follows the snapshot/WAL playbook: Write stages the whole
// file at <name>.tmp, fsyncs it, renames it into place and fsyncs the
// directory. A crash mid-write leaves only a stale .tmp (cleaned up at
// the next List); a damaged file fails Open with ErrCorrupt and is
// quarantined aside like a corrupt WAL, never silently skipped.
package segment

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"graphsig/internal/core"
	"graphsig/internal/fault"
	"graphsig/internal/graph"
)

const (
	header     = "graphsig-segment v1"
	fileSuffix = ".seg"
	tmpSuffix  = ".tmp"
	// quarantineSuffix matches the store/WAL convention so operators
	// find all damaged artifacts with one glob.
	quarantineSuffix = ".corrupt"
)

// ErrCorrupt marks a segment file that is structurally broken — bad
// checksum, torn tail, malformed TOC — as opposed to an I/O failure
// reaching it. Corrupt segments are safe to Quarantine.
var ErrCorrupt = errors.New("segment: corrupt segment")

func corruptf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
}

// windowInfo is one TOC entry: where a window's block lives in the file.
type windowInfo struct {
	window int
	scheme string
	off    int64
	size   int64
	crc    uint32
}

// Segment is an opened, verified segment file. The handle caches the
// TOC and label index in memory; window blocks stay on disk and are
// re-read (and re-verified) on demand. Segments are immutable, so a
// handle is safe for concurrent readers.
type Segment struct {
	path     string
	universe *graph.Universe
	size     int64
	toc      []windowInfo // ascending by window
	byWindow map[int]int
	labels   map[string][]int // source label → window indices, ascending
}

// Name returns the canonical file name for a segment covering windows
// [first, last].
func Name(first, last int) string {
	return fmt.Sprintf("seg-%09d-%09d%s", first, last, fileSuffix)
}

// Path returns the segment's file path.
func (s *Segment) Path() string { return s.path }

// Size returns the segment file's byte size.
func (s *Segment) Size() int64 { return s.size }

// First returns the oldest window index in the segment.
func (s *Segment) First() int { return s.toc[0].window }

// Last returns the newest window index in the segment.
func (s *Segment) Last() int { return s.toc[len(s.toc)-1].window }

// Len returns the number of windows in the segment.
func (s *Segment) Len() int { return len(s.toc) }

// Windows returns the window indices in the segment, ascending.
func (s *Segment) Windows() []int {
	out := make([]int, len(s.toc))
	for i, w := range s.toc {
		out[i] = w.window
	}
	return out
}

// Contains reports whether window w has a block in the segment.
func (s *Segment) Contains(w int) bool {
	_, ok := s.byWindow[w]
	return ok
}

// LabelWindows returns the windows in which label appears as a source,
// ascending — the per-segment index that lets History seek straight to
// the relevant blocks. The slice is shared; callers must not mutate it.
func (s *Segment) LabelWindows(label string) []int { return s.labels[label] }

// ReadWindow reads, verifies and parses the block of window w. Labels
// resolve through the universe the segment was opened against; Open
// interned every label the segment references, so runtime reads never
// mutate the universe and are safe under the store's read lock.
func (s *Segment) ReadWindow(w int) (*core.SignatureSet, error) {
	i, ok := s.byWindow[w]
	if !ok {
		return nil, fmt.Errorf("segment: window %d not in %s", w, filepath.Base(s.path))
	}
	info := s.toc[i]
	f, err := os.Open(s.path)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	defer f.Close()
	raw := make([]byte, info.size)
	if _, err := f.ReadAt(raw, info.off); err != nil {
		return nil, fmt.Errorf("segment: %s window %d: %w", filepath.Base(s.path), w, err)
	}
	if got := crc32.ChecksumIEEE(raw); got != info.crc {
		return nil, corruptf("%s window %d checksum mismatch: %08x != %08x",
			filepath.Base(s.path), w, got, info.crc)
	}
	set, err := core.ReadSignatureSet(bytes.NewReader(raw), s.universe)
	if err != nil {
		return nil, corruptf("%s window %d: %v", filepath.Base(s.path), w, err)
	}
	return set, nil
}

// Write compacts sets (ascending window order) into a new segment file
// under dir and returns the opened handle. The file is staged at
// <name>.tmp, fsynced, renamed into place and the directory fsynced, so
// a crash at any point leaves either no segment or a complete one —
// and because the block codec is deterministic, re-compacting the same
// windows after a crash-replay reproduces the file bit-identically
// (cluster followers rely on this to agree with their primary).
func Write(dir string, sets []*core.SignatureSet, u *graph.Universe) (*Segment, error) {
	if len(sets) == 0 {
		return nil, fmt.Errorf("segment: write with no windows")
	}
	for i := 1; i < len(sets); i++ {
		if sets[i].Window <= sets[i-1].Window {
			return nil, fmt.Errorf("segment: windows not ascending: %d after %d",
				sets[i].Window, sets[i-1].Window)
		}
	}
	seg := &Segment{
		universe: u,
		byWindow: make(map[int]int, len(sets)),
		labels:   make(map[string][]int),
	}

	var buf bytes.Buffer
	fmt.Fprintln(&buf, header)
	var block bytes.Buffer
	for i, set := range sets {
		block.Reset()
		if err := core.WriteSignatureSet(&block, set, u); err != nil {
			return nil, fmt.Errorf("segment: window %d: %w", set.Window, err)
		}
		seg.toc = append(seg.toc, windowInfo{
			window: set.Window,
			scheme: set.Scheme,
			off:    int64(buf.Len()),
			size:   int64(block.Len()),
			crc:    crc32.ChecksumIEEE(block.Bytes()),
		})
		seg.byWindow[set.Window] = i
		for _, v := range set.Sources {
			label := u.Label(v)
			seg.labels[label] = append(seg.labels[label], set.Window)
		}
		buf.Write(block.Bytes())
	}
	tocOff := int64(buf.Len())
	fmt.Fprintf(&buf, "toc %d\n", len(seg.toc))
	for _, w := range seg.toc {
		fmt.Fprintf(&buf, "window %d %q %d %d %08x\n", w.window, w.scheme, w.off, w.size, w.crc)
	}
	labels := make([]string, 0, len(seg.labels))
	for label := range seg.labels {
		labels = append(labels, label)
	}
	sort.Strings(labels)
	for _, label := range labels {
		fmt.Fprintf(&buf, "label %q", label)
		for _, w := range seg.labels[label] {
			fmt.Fprintf(&buf, " %d", w)
		}
		fmt.Fprintln(&buf)
	}
	fmt.Fprintf(&buf, "end %d %08x\n", tocOff, crc32.ChecksumIEEE(buf.Bytes()))

	path := filepath.Join(dir, Name(sets[0].Window, sets[len(sets)-1].Window))
	if err := writeFileSynced(path+tmpSuffix, buf.Bytes(), "segment.write"); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	if err := fault.Inject("segment.commit"); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	if err := os.Rename(path+tmpSuffix, path); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	if err := syncDir(dir); err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	seg.path = path
	seg.size = int64(buf.Len())
	return seg, nil
}

// Open reads and fully verifies a segment file: the trailing
// self-checksum, the TOC, and every window block (size, CRC, and a
// complete parse). Parsing at open time doubles as label registration —
// every label the segment references is interned into u here, once,
// single-threaded, so later ReadWindow calls resolve labels without
// ever mutating the universe. Structural damage is reported as
// ErrCorrupt (quarantine and carry on); plain I/O errors are not.
func Open(path string, u *graph.Universe) (*Segment, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("segment: %w", err)
	}
	if !bytes.HasPrefix(raw, []byte(header+"\n")) {
		return nil, corruptf("%s: bad header", filepath.Base(path))
	}
	if len(raw) == 0 || raw[len(raw)-1] != '\n' {
		return nil, corruptf("%s: torn tail", filepath.Base(path))
	}
	footStart := bytes.LastIndexByte(raw[:len(raw)-1], '\n') + 1
	foot := strings.TrimSuffix(string(raw[footStart:]), "\n")
	var tocOff int64
	var wantCRC uint32
	if _, err := fmt.Sscanf(foot, "end %d %x", &tocOff, &wantCRC); err != nil {
		return nil, corruptf("%s: bad end line %q", filepath.Base(path), foot)
	}
	if got := crc32.ChecksumIEEE(raw[:footStart]); got != wantCRC {
		return nil, corruptf("%s: checksum mismatch: %08x != %08x", filepath.Base(path), got, wantCRC)
	}
	if tocOff <= 0 || tocOff >= int64(footStart) {
		return nil, corruptf("%s: toc offset %d out of range", filepath.Base(path), tocOff)
	}

	seg := &Segment{
		path:     path,
		universe: u,
		size:     int64(len(raw)),
		byWindow: make(map[int]int),
		labels:   make(map[string][]int),
	}
	lines := strings.Split(strings.TrimSuffix(string(raw[tocOff:int64(footStart)]), "\n"), "\n")
	if len(lines) == 0 || !strings.HasPrefix(lines[0], "toc ") {
		return nil, corruptf("%s: missing toc line", filepath.Base(path))
	}
	n, err := strconv.Atoi(strings.TrimPrefix(lines[0], "toc "))
	if err != nil || n <= 0 {
		return nil, corruptf("%s: bad toc count %q", filepath.Base(path), lines[0])
	}
	for _, line := range lines[1:] {
		switch {
		case strings.HasPrefix(line, "window "):
			fields, err := core.SplitQuoted(line)
			if err != nil || len(fields) != 6 {
				return nil, corruptf("%s: bad toc window line %q", filepath.Base(path), line)
			}
			var info windowInfo
			info.scheme = fields[2]
			if info.window, err = strconv.Atoi(fields[1]); err != nil {
				return nil, corruptf("%s: bad window index in %q", filepath.Base(path), line)
			}
			if info.off, err = strconv.ParseInt(fields[3], 10, 64); err != nil {
				return nil, corruptf("%s: bad offset in %q", filepath.Base(path), line)
			}
			if info.size, err = strconv.ParseInt(fields[4], 10, 64); err != nil {
				return nil, corruptf("%s: bad size in %q", filepath.Base(path), line)
			}
			crc, err := strconv.ParseUint(fields[5], 16, 32)
			if err != nil {
				return nil, corruptf("%s: bad block checksum in %q", filepath.Base(path), line)
			}
			info.crc = uint32(crc)
			if k := len(seg.toc); k > 0 && info.window <= seg.toc[k-1].window {
				return nil, corruptf("%s: toc windows not ascending at %d", filepath.Base(path), info.window)
			}
			seg.byWindow[info.window] = len(seg.toc)
			seg.toc = append(seg.toc, info)
		case strings.HasPrefix(line, "label "):
			fields, err := core.SplitQuoted(line)
			if err != nil || len(fields) < 3 {
				return nil, corruptf("%s: bad toc label line %q", filepath.Base(path), line)
			}
			wins := make([]int, 0, len(fields)-2)
			for _, f := range fields[2:] {
				w, err := strconv.Atoi(f)
				if err != nil {
					return nil, corruptf("%s: bad label window in %q", filepath.Base(path), line)
				}
				if _, ok := seg.byWindow[w]; !ok {
					return nil, corruptf("%s: label references unknown window %d", filepath.Base(path), w)
				}
				wins = append(wins, w)
			}
			seg.labels[fields[1]] = wins
		default:
			return nil, corruptf("%s: unknown toc line %q", filepath.Base(path), line)
		}
	}
	if len(seg.toc) != n {
		return nil, corruptf("%s: toc promises %d windows, found %d", filepath.Base(path), n, len(seg.toc))
	}

	// Deep verification + label registration: every block must match its
	// TOC entry and parse cleanly. Interning here (boot, single-threaded)
	// is what makes later ReadWindow calls mutation-free.
	for _, info := range seg.toc {
		if info.off < int64(len(header)+1) || info.off+info.size > tocOff {
			return nil, corruptf("%s: window %d block out of bounds", filepath.Base(path), info.window)
		}
		block := raw[info.off : info.off+info.size]
		if got := crc32.ChecksumIEEE(block); got != info.crc {
			return nil, corruptf("%s: window %d checksum mismatch: %08x != %08x",
				filepath.Base(path), info.window, got, info.crc)
		}
		set, err := core.ReadSignatureSet(bytes.NewReader(block), u)
		if err != nil {
			return nil, corruptf("%s: window %d: %v", filepath.Base(path), info.window, err)
		}
		if set.Window != info.window {
			return nil, corruptf("%s: block claims window %d, toc says %d",
				filepath.Base(path), set.Window, info.window)
		}
	}
	return seg, nil
}

// List returns the segment files under dir, sorted by name (the
// zero-padded window range makes name order equal window order), and
// removes stale .tmp leftovers from crashed compactions. A missing dir
// is an empty listing, not an error.
func List(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("segment: %w", err)
	}
	var out []string
	for _, e := range entries {
		name := e.Name()
		if strings.HasSuffix(name, fileSuffix+tmpSuffix) {
			os.Remove(filepath.Join(dir, name))
			continue
		}
		if strings.HasSuffix(name, fileSuffix) {
			out = append(out, filepath.Join(dir, name))
		}
	}
	sort.Strings(out)
	return out, nil
}

// Quarantine renames a segment file that failed to Open aside
// (file.corrupt, file.corrupt.1, ...) and returns the new path, so the
// caller can keep serving while preserving the evidence.
func Quarantine(path string) (string, error) {
	dst := path + quarantineSuffix
	for i := 1; ; i++ {
		if _, err := os.Stat(dst); os.IsNotExist(err) {
			break
		}
		dst = fmt.Sprintf("%s%s.%d", path, quarantineSuffix, i)
	}
	if err := os.Rename(path, dst); err != nil {
		return "", fmt.Errorf("segment: quarantine: %w", err)
	}
	return dst, nil
}

// writeFileSynced writes data to path and fsyncs it; the failpoint
// fires before the write so tests can inject full-disk failures.
func writeFileSynced(path string, data []byte, failpoint string) error {
	if err := fault.Inject(failpoint); err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	_, err = f.Write(data)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	return err
}

// syncDir fsyncs a directory so its entries are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
