// Package netflow implements the flow-record substrate: a NetFlow-style
// record type summarizing one aggregated communication (the form in which
// the paper's enterprise data arrives), text and binary codecs, and a
// windowing aggregator that turns a stream of records into the
// per-interval communication graphs of the paper's framework.
package netflow

import (
	"fmt"
	"time"
)

// Record summarizes one flow: traffic from Src to Dst observed at Start,
// carrying Sessions TCP sessions (the paper's edge-weight unit), Bytes
// and Packets. Only Src, Dst, Start and Sessions participate in graph
// construction; the remaining fields exist because real NetFlow exports
// carry them and downstream users filter on them.
type Record struct {
	Src      string
	Dst      string
	Start    time.Time
	Duration time.Duration
	Sessions int
	Bytes    int64
	Packets  int64
	Proto    Proto
}

// Proto is the transport protocol of a flow.
type Proto uint8

// Transport protocols used by the enterprise dataset. The paper's study
// restricts itself to TCP.
const (
	TCP Proto = 6
	UDP Proto = 17
)

// String renders the protocol name.
func (p Proto) String() string {
	switch p {
	case TCP:
		return "tcp"
	case UDP:
		return "udp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// ParseProto parses "tcp"/"udp" or a numeric protocol.
func ParseProto(s string) (Proto, error) {
	switch s {
	case "tcp", "TCP":
		return TCP, nil
	case "udp", "UDP":
		return UDP, nil
	}
	var n int
	if _, err := fmt.Sscanf(s, "%d", &n); err != nil || n < 0 || n > 255 {
		return 0, fmt.Errorf("netflow: invalid protocol %q", s)
	}
	return Proto(n), nil
}

// Validate reports whether the record is structurally sound.
func (r *Record) Validate() error {
	if r.Src == "" {
		return fmt.Errorf("netflow: record missing source")
	}
	if r.Dst == "" {
		return fmt.Errorf("netflow: record missing destination")
	}
	if r.Src == r.Dst {
		return fmt.Errorf("netflow: record %s->%s is a self-flow", r.Src, r.Dst)
	}
	if r.Sessions <= 0 {
		return fmt.Errorf("netflow: record %s->%s has non-positive sessions %d", r.Src, r.Dst, r.Sessions)
	}
	if r.Start.IsZero() {
		return fmt.Errorf("netflow: record %s->%s has zero start time", r.Src, r.Dst)
	}
	if r.Duration < 0 {
		return fmt.Errorf("netflow: record %s->%s has negative duration", r.Src, r.Dst)
	}
	if r.Bytes < 0 || r.Packets < 0 {
		return fmt.Errorf("netflow: record %s->%s has negative counters", r.Src, r.Dst)
	}
	return nil
}
