package netflow

import (
	"fmt"
	"sort"
	"time"

	"graphsig/internal/graph"
)

// Classifier assigns each node label to a bipartite part. The enterprise
// setting uses a prefix classifier (local hosts are Part1, externals
// Part2); general graphs use General.
type Classifier func(label string) graph.Part

// General classifies every label as PartNone (non-bipartite graph).
func General(string) graph.Part { return graph.PartNone }

// PrefixClassifier classifies labels with the given prefix as Part1 and
// everything else as Part2, matching the local/external split of the
// enterprise capture.
func PrefixClassifier(localPrefix string) Classifier {
	return func(label string) graph.Part {
		if len(label) >= len(localPrefix) && label[:len(localPrefix)] == localPrefix {
			return graph.Part1
		}
		return graph.Part2
	}
}

// AggregateOptions controls how a flow-record stream becomes a sequence
// of communication graphs.
type AggregateOptions struct {
	// WindowSize is the aggregation interval (the paper uses five
	// weekdays per window on the enterprise data).
	WindowSize time.Duration
	// Origin anchors window boundaries; records before Origin are
	// rejected. Zero means the start time of the earliest record.
	Origin time.Time
	// Classify assigns bipartite parts; nil means General.
	Classify Classifier
	// TCPOnly drops non-TCP records, matching the paper's setup.
	TCPOnly bool
	// Universe receives interned labels; nil allocates a fresh one.
	Universe *graph.Universe
}

// Aggregate buckets records into consecutive windows of WindowSize and
// builds one communication graph per window, weighting each directed
// edge by total sessions (the paper's edge-weight measure). Windows with
// no records still appear (empty) so that window indices align with
// wall-clock intervals.
func Aggregate(records []Record, opts AggregateOptions) ([]*graph.Window, error) {
	if opts.WindowSize <= 0 {
		return nil, fmt.Errorf("netflow: aggregate requires positive window size")
	}
	classify := opts.Classify
	if classify == nil {
		classify = General
	}
	u := opts.Universe
	if u == nil {
		u = graph.NewUniverse()
	}
	kept := make([]Record, 0, len(records))
	for i := range records {
		r := records[i]
		if err := r.Validate(); err != nil {
			return nil, fmt.Errorf("netflow: aggregate: record %d: %w", i, err)
		}
		if opts.TCPOnly && r.Proto != TCP {
			continue
		}
		kept = append(kept, r)
	}
	if len(kept) == 0 {
		return nil, nil
	}
	origin := opts.Origin
	if origin.IsZero() {
		origin = kept[0].Start
		for _, r := range kept[1:] {
			if r.Start.Before(origin) {
				origin = r.Start
			}
		}
	}
	maxIdx := 0
	idxOf := func(r *Record) (int, error) {
		d := r.Start.Sub(origin)
		if d < 0 {
			return 0, fmt.Errorf("netflow: record at %v precedes origin %v", r.Start, origin)
		}
		return int(d / opts.WindowSize), nil
	}
	for i := range kept {
		idx, err := idxOf(&kept[i])
		if err != nil {
			return nil, err
		}
		if idx > maxIdx {
			maxIdx = idx
		}
	}
	// Intern labels in a deterministic order (sorted by label) so that
	// NodeIDs do not depend on record order.
	labels := map[string]graph.Part{}
	for i := range kept {
		labels[kept[i].Src] = classify(kept[i].Src)
		labels[kept[i].Dst] = classify(kept[i].Dst)
	}
	sorted := make([]string, 0, len(labels))
	for l := range labels {
		sorted = append(sorted, l)
	}
	sort.Strings(sorted)
	for _, l := range sorted {
		if _, err := u.Intern(l, labels[l]); err != nil {
			return nil, fmt.Errorf("netflow: aggregate: %w", err)
		}
	}

	builders := make([]*graph.Builder, maxIdx+1)
	for i := range builders {
		builders[i] = graph.NewBuilder(u, i)
	}
	for i := range kept {
		r := &kept[i]
		idx, err := idxOf(r)
		if err != nil {
			return nil, err
		}
		src, _ := u.Lookup(r.Src)
		dst, _ := u.Lookup(r.Dst)
		if err := builders[idx].Add(src, dst, float64(r.Sessions)); err != nil {
			return nil, fmt.Errorf("netflow: aggregate: record %d: %w", i, err)
		}
	}
	windows := make([]*graph.Window, len(builders))
	for i, b := range builders {
		windows[i] = b.Build()
	}
	return windows, nil
}
