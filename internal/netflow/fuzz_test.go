package netflow

import (
	"bytes"
	"testing"
	"time"
)

// FuzzReadBinary throws arbitrary bytes at the binary codec. ReadBinary
// must never panic or over-allocate, and anything it accepts must
// survive a write/read round trip unchanged.
func FuzzReadBinary(f *testing.F) {
	var valid bytes.Buffer
	err := WriteBinary(&valid, []Record{
		{
			Src: "alpha", Dst: "beta",
			Start:    time.Date(2026, 3, 2, 10, 0, 0, 0, time.UTC),
			Duration: 90 * time.Second,
			Proto:    TCP, Sessions: 4, Bytes: 512, Packets: 13,
		},
		{
			Src: "beta", Dst: "gamma",
			Start: time.Date(2026, 3, 2, 10, 1, 0, 0, time.UTC),
			Proto: UDP, Sessions: 1, Bytes: 64, Packets: 1,
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())-3]) // torn mid-record
	f.Add([]byte("NFB1"))                       // header only
	f.Add([]byte("NFB2junk"))                   // bad magic
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		records, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteBinary(&out, records); err != nil {
			t.Fatalf("re-encoding accepted records failed: %v", err)
		}
		again, err := ReadBinary(&out)
		if err != nil {
			t.Fatalf("re-decoding failed: %v", err)
		}
		if len(again) != len(records) {
			t.Fatalf("round trip changed record count: %d != %d", len(again), len(records))
		}
		for i := range records {
			if !again[i].Start.Equal(records[i].Start) {
				t.Fatalf("record %d start changed: %v != %v", i, again[i].Start, records[i].Start)
			}
			a, b := again[i], records[i]
			a.Start, b.Start = time.Time{}, time.Time{}
			if a != b {
				t.Fatalf("record %d changed across round trip: %+v != %+v", i, a, b)
			}
		}
	})
}
