package netflow

import (
	"testing"
	"time"

	"graphsig/internal/graph"
)

func rec(src, dst string, at time.Time, sessions int, proto Proto) Record {
	return Record{
		Src: src, Dst: dst, Start: at, Sessions: sessions,
		Duration: time.Second, Bytes: 100, Packets: 2, Proto: proto,
	}
}

var t0 = time.Date(2026, 1, 5, 0, 0, 0, 0, time.UTC)

func TestAggregateWindows(t *testing.T) {
	day := 24 * time.Hour
	records := []Record{
		rec("10.0.0.1", "e1", t0, 2, TCP),
		rec("10.0.0.1", "e1", t0.Add(3*day), 3, TCP),  // same window (5d)
		rec("10.0.0.1", "e2", t0.Add(6*day), 1, TCP),  // window 1
		rec("10.0.0.2", "e1", t0.Add(12*day), 4, TCP), // window 2
	}
	windows, err := Aggregate(records, AggregateOptions{
		WindowSize: 5 * day,
		Origin:     t0,
		Classify:   PrefixClassifier("10."),
		TCPOnly:    true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 3 {
		t.Fatalf("windows = %d", len(windows))
	}
	u := windows[0].Universe()
	h1, _ := u.Lookup("10.0.0.1")
	e1, _ := u.Lookup("e1")
	if got := windows[0].Weight(h1, e1); got != 5 {
		t.Fatalf("window0 C = %g", got)
	}
	if windows[1].NumEdges() != 1 || windows[2].NumEdges() != 1 {
		t.Fatal("later windows wrong")
	}
	// Bipartite classification.
	if u.PartOf(h1) != graph.Part1 || u.PartOf(e1) != graph.Part2 {
		t.Fatal("classifier parts wrong")
	}
}

func TestAggregateTCPOnly(t *testing.T) {
	records := []Record{
		rec("a", "b", t0, 2, TCP),
		rec("a", "c", t0, 9, UDP),
	}
	windows, err := Aggregate(records, AggregateOptions{WindowSize: time.Hour, TCPOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	if windows[0].NumEdges() != 1 {
		t.Fatalf("UDP record not dropped: %d edges", windows[0].NumEdges())
	}
	windows, err = Aggregate(records, AggregateOptions{WindowSize: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	if windows[0].NumEdges() != 2 {
		t.Fatal("non-TCPOnly dropped records")
	}
}

func TestAggregateDeterministicInterning(t *testing.T) {
	records := []Record{
		rec("b", "z", t0, 1, TCP),
		rec("a", "y", t0, 1, TCP),
	}
	reversed := []Record{records[1], records[0]}
	w1, err := Aggregate(records, AggregateOptions{WindowSize: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Aggregate(reversed, AggregateOptions{WindowSize: time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	for _, l := range []string{"a", "b", "y", "z"} {
		id1, _ := w1[0].Universe().Lookup(l)
		id2, _ := w2[0].Universe().Lookup(l)
		if id1 != id2 {
			t.Fatalf("label %q got ids %d/%d depending on record order", l, id1, id2)
		}
	}
}

func TestAggregateValidation(t *testing.T) {
	if _, err := Aggregate(nil, AggregateOptions{}); err == nil {
		t.Fatal("zero window size accepted")
	}
	// Records before the origin are rejected.
	_, err := Aggregate(
		[]Record{rec("a", "b", t0, 1, TCP)},
		AggregateOptions{WindowSize: time.Hour, Origin: t0.Add(time.Hour)},
	)
	if err == nil {
		t.Fatal("pre-origin record accepted")
	}
	// Invalid records are rejected with their index.
	_, err = Aggregate(
		[]Record{{Src: "a", Dst: "a", Start: t0, Sessions: 1, Proto: TCP}},
		AggregateOptions{WindowSize: time.Hour},
	)
	if err == nil {
		t.Fatal("self-flow accepted")
	}
}

func TestAggregateEmpty(t *testing.T) {
	windows, err := Aggregate(nil, AggregateOptions{WindowSize: time.Hour})
	if err != nil || windows != nil {
		t.Fatalf("empty aggregate: %v %v", windows, err)
	}
	// All records filtered out also yields no windows.
	windows, err = Aggregate(
		[]Record{rec("a", "b", t0, 1, UDP)},
		AggregateOptions{WindowSize: time.Hour, TCPOnly: true},
	)
	if err != nil || windows != nil {
		t.Fatalf("filtered aggregate: %v %v", windows, err)
	}
}

func TestAggregateSharedUniverse(t *testing.T) {
	u := graph.NewUniverse()
	u.MustIntern("pre", graph.PartNone)
	windows, err := Aggregate(
		[]Record{rec("a", "b", t0, 1, TCP)},
		AggregateOptions{WindowSize: time.Hour, Universe: u},
	)
	if err != nil {
		t.Fatal(err)
	}
	if windows[0].Universe() != u {
		t.Fatal("universe not shared")
	}
	if _, ok := u.Lookup("pre"); !ok {
		t.Fatal("pre-existing label lost")
	}
}

func TestGeneralClassifier(t *testing.T) {
	if General("anything") != graph.PartNone {
		t.Fatal("General misclassified")
	}
	c := PrefixClassifier("10.")
	if c("10.1.2.3") != graph.Part1 || c("192.168.0.1") != graph.Part2 || c("1") != graph.Part2 {
		t.Fatal("PrefixClassifier wrong")
	}
}
