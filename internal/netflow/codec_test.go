package netflow

import (
	"bytes"
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecords() []Record {
	base := time.Date(2026, 1, 5, 8, 0, 0, 0, time.UTC)
	return []Record{
		{Src: "10.0.0.1", Dst: "198.18.0.9", Start: base, Duration: 3 * time.Second, Sessions: 2, Bytes: 1200, Packets: 14, Proto: TCP},
		{Src: "10.0.0.2", Dst: "198.18.0.9", Start: base.Add(time.Hour), Duration: 0, Sessions: 1, Bytes: 0, Packets: 0, Proto: UDP},
		{Src: "hostA", Dst: "hostB", Start: base.Add(26 * time.Hour), Duration: 90 * time.Minute, Sessions: 7, Bytes: 1 << 30, Packets: 99999, Proto: TCP},
	}
}

func TestTextRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	records := sampleRecords()
	if err := WriteText(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, records)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	records := sampleRecords()
	if err := WriteBinary(&buf, records); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, records) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, records)
	}
}

// Property: both codecs round-trip arbitrary valid records.
func TestCodecRoundTripProperty(t *testing.T) {
	gen := func(seed int64) []Record {
		rng := rand.New(rand.NewSource(seed))
		n := rng.Intn(20)
		out := make([]Record, 0, n)
		for i := 0; i < n; i++ {
			src := "h" + string(rune('a'+rng.Intn(20)))
			dst := "x" + string(rune('a'+rng.Intn(20)))
			out = append(out, Record{
				Src:      src,
				Dst:      dst,
				Start:    time.UnixMilli(int64(rng.Intn(1 << 30))).UTC(),
				Duration: time.Duration(rng.Intn(1e6)) * time.Millisecond,
				Sessions: 1 + rng.Intn(100),
				Bytes:    int64(rng.Intn(1 << 20)),
				Packets:  int64(rng.Intn(1 << 16)),
				Proto:    TCP,
			})
		}
		return out
	}
	f := func(seed int64) bool {
		records := gen(seed)
		if len(records) == 0 {
			return true
		}
		var tb, bb bytes.Buffer
		if WriteText(&tb, records) != nil || WriteBinary(&bb, records) != nil {
			return false
		}
		fromText, err1 := ReadText(&tb)
		fromBin, err2 := ReadBinary(&bb)
		return err1 == nil && err2 == nil &&
			reflect.DeepEqual(fromText, records) && reflect.DeepEqual(fromBin, records)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestReadTextSkipsCommentsAndBlanks(t *testing.T) {
	input := "# header\n\n1000 5 a b tcp 1 0 0\n  \n"
	got, err := ReadText(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Src != "a" {
		t.Fatalf("parsed %+v", got)
	}
}

func TestReadTextRejectsMalformed(t *testing.T) {
	cases := []string{
		"1000 5 a b tcp 1 0",         // missing field
		"x 5 a b tcp 1 0 0",          // bad start
		"1000 x a b tcp 1 0 0",       // bad duration
		"1000 5 a b nope 1 0 0",      // bad proto
		"1000 5 a b tcp x 0 0",       // bad sessions
		"1000 5 a b tcp 0 0 0",       // zero sessions
		"1000 5 a a tcp 1 0 0",       // self flow
		"1000 5 a b tcp 1 -1 0",      // negative bytes
		"1000 -5 a b tcp 1 0 0",      // negative duration
		"1000 5 a b tcp 1 0 0 extra", // extra field
	}
	for _, line := range cases {
		if _, err := ReadText(strings.NewReader(line)); err == nil {
			t.Fatalf("accepted %q", line)
		}
	}
}

func TestReadTextReportsLineNumber(t *testing.T) {
	input := "# ok\n1000 5 a b tcp 1 0 0\nbroken line\n"
	_, err := ReadText(strings.NewReader(input))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("error = %v", err)
	}
}

func TestWriteTextRejectsInvalidRecord(t *testing.T) {
	var buf bytes.Buffer
	err := WriteText(&buf, []Record{{Src: "", Dst: "b", Start: time.Now(), Sessions: 1}})
	if err == nil {
		t.Fatal("invalid record written")
	}
}

func TestReadBinaryBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("XXXX"))); err == nil {
		t.Fatal("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty stream accepted")
	}
}

func TestReadBinaryTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteBinary(&buf, sampleRecords()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Any strict prefix beyond the magic must fail with a corruption
	// error, never succeed silently with fewer records... except at
	// exact record boundaries, where the stream is indistinguishable
	// from a shorter valid file.
	boundaries := map[int]bool{len(full): true}
	// Find record boundaries by re-encoding prefixes.
	for n := 1; n <= len(sampleRecords()); n++ {
		var b bytes.Buffer
		if err := WriteBinary(&b, sampleRecords()[:n]); err != nil {
			t.Fatal(err)
		}
		boundaries[b.Len()] = true
	}
	for cut := 5; cut < len(full); cut++ {
		if boundaries[cut] {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(full[:cut])); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
}

func TestProtoParse(t *testing.T) {
	for _, c := range []struct {
		in   string
		want Proto
	}{{"tcp", TCP}, {"TCP", TCP}, {"udp", UDP}, {"47", Proto(47)}} {
		got, err := ParseProto(c.in)
		if err != nil || got != c.want {
			t.Fatalf("ParseProto(%q) = %v, %v", c.in, got, err)
		}
	}
	for _, in := range []string{"", "icmpx", "300", "-1"} {
		if _, err := ParseProto(in); err == nil {
			t.Fatalf("ParseProto(%q) accepted", in)
		}
	}
	if TCP.String() != "tcp" || UDP.String() != "udp" || Proto(47).String() != "proto(47)" {
		t.Fatal("Proto.String wrong")
	}
}
