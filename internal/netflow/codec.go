package netflow

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"
)

// Text codec: one record per line,
//
//	start_unix_ms  duration_ms  src  dst  proto  sessions  bytes  packets
//
// separated by single spaces. Lines beginning with '#' and blank lines
// are ignored. This is the on-disk format emitted by cmd/siggen and
// consumed by cmd/sigtool.

// WriteText writes records in the text format.
func WriteText(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintln(bw, "# start_ms duration_ms src dst proto sessions bytes packets"); err != nil {
		return err
	}
	for i := range records {
		r := &records[i]
		if err := r.Validate(); err != nil {
			return fmt.Errorf("netflow: record %d: %w", i, err)
		}
		_, err := fmt.Fprintf(bw, "%d %d %s %s %s %d %d %d\n",
			r.Start.UnixMilli(), r.Duration.Milliseconds(),
			r.Src, r.Dst, r.Proto, r.Sessions, r.Bytes, r.Packets)
		if err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadText parses records from the text format, rejecting malformed
// lines with the line number in the error.
func ReadText(r io.Reader) ([]Record, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	var out []Record
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		rec, err := parseTextLine(text)
		if err != nil {
			return nil, fmt.Errorf("netflow: line %d: %w", line, err)
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("netflow: read: %w", err)
	}
	return out, nil
}

// durationFromMillis converts a wire millisecond count, rejecting
// values whose nanosecond form overflows time.Duration — the overflow
// would otherwise wrap silently, letting a corrupt field round-trip to
// a different duration (or a negative one) instead of an error.
func durationFromMillis(ms int64) (time.Duration, error) {
	if ms < 0 || ms > math.MaxInt64/int64(time.Millisecond) {
		return 0, fmt.Errorf("duration %dms out of range", ms)
	}
	return time.Duration(ms) * time.Millisecond, nil
}

func parseTextLine(text string) (Record, error) {
	f := strings.Fields(text)
	if len(f) != 8 {
		return Record{}, fmt.Errorf("want 8 fields, got %d", len(f))
	}
	startMS, err := strconv.ParseInt(f[0], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad start: %w", err)
	}
	durMS, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad duration: %w", err)
	}
	proto, err := ParseProto(f[4])
	if err != nil {
		return Record{}, err
	}
	sessions, err := strconv.Atoi(f[5])
	if err != nil {
		return Record{}, fmt.Errorf("bad sessions: %w", err)
	}
	bytes, err := strconv.ParseInt(f[6], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad bytes: %w", err)
	}
	packets, err := strconv.ParseInt(f[7], 10, 64)
	if err != nil {
		return Record{}, fmt.Errorf("bad packets: %w", err)
	}
	dur, err := durationFromMillis(durMS)
	if err != nil {
		return Record{}, err
	}
	rec := Record{
		Src:      f[2],
		Dst:      f[3],
		Start:    time.UnixMilli(startMS).UTC(),
		Duration: dur,
		Proto:    proto,
		Sessions: sessions,
		Bytes:    bytes,
		Packets:  packets,
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

// Binary codec: a compact length-prefixed little-endian framing with a
// magic header, for large captures where the text form is too slow.
//
//	header:  "NFB1"
//	record:  u16 srcLen, src, u16 dstLen, dst,
//	         i64 startUnixMs, i64 durationMs,
//	         u8 proto, u32 sessions, i64 bytes, i64 packets
//
// The per-record encoding is also exported standalone
// (WriteRecordBinary/ReadRecordBinary) so other framings — the
// internal/wal write-ahead log wraps each record in a CRC frame — can
// reuse it without the stream magic.

var binaryMagic = [4]byte{'N', 'F', 'B', '1'}

// WriteBinary writes records in the binary format.
func WriteBinary(w io.Writer, records []Record) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	for i := range records {
		if err := WriteRecordBinary(bw, &records[i]); err != nil {
			return fmt.Errorf("netflow: record %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// WriteRecordBinary writes one record's binary encoding (no stream
// magic) to w, validating it first.
func WriteRecordBinary(w io.Writer, r *Record) error {
	if err := r.Validate(); err != nil {
		return err
	}
	if len(r.Src) > 0xFFFF || len(r.Dst) > 0xFFFF {
		return fmt.Errorf("label too long")
	}
	if err := writeString(w, r.Src); err != nil {
		return err
	}
	if err := writeString(w, r.Dst); err != nil {
		return err
	}
	fixed := []any{
		r.Start.UnixMilli(), r.Duration.Milliseconds(),
		uint8(r.Proto), uint32(r.Sessions), r.Bytes, r.Packets,
	}
	for _, v := range fixed {
		if err := binary.Write(w, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	return nil
}

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint16(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

// ReadBinary parses records from the binary format.
func ReadBinary(r io.Reader) ([]Record, error) {
	br := bufio.NewReader(r)
	var magic [4]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("netflow: read magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("netflow: bad magic %q", magic[:])
	}
	var out []Record
	for {
		rec, err := ReadRecordBinary(br)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, fmt.Errorf("netflow: record %d: %w", len(out), err)
		}
		out = append(out, rec)
	}
}

// ReadRecordBinary reads one record in the binary per-record encoding.
// A clean io.EOF before the first byte means end of input; an EOF
// anywhere inside the record surfaces as io.ErrUnexpectedEOF. The
// record is validated before being returned.
func ReadRecordBinary(r io.Reader) (Record, error) {
	src, err := readString(r)
	if err != nil {
		if err == io.EOF {
			return Record{}, io.EOF
		}
		return Record{}, fmt.Errorf("src: %w", err)
	}
	dst, err := readString(r)
	if err != nil {
		return Record{}, fmt.Errorf("dst: %w", eofIsUnexpected(err))
	}
	var startMS, durMS int64
	var proto uint8
	var sessions uint32
	var bytes, packets int64
	for _, v := range []any{&startMS, &durMS, &proto, &sessions, &bytes, &packets} {
		if err := binary.Read(r, binary.LittleEndian, v); err != nil {
			return Record{}, eofIsUnexpected(err)
		}
	}
	dur, err := durationFromMillis(durMS)
	if err != nil {
		return Record{}, err
	}
	rec := Record{
		Src:      src,
		Dst:      dst,
		Start:    time.UnixMilli(startMS).UTC(),
		Duration: dur,
		Proto:    Proto(proto),
		Sessions: int(sessions),
		Bytes:    bytes,
		Packets:  packets,
	}
	if err := rec.Validate(); err != nil {
		return Record{}, err
	}
	return rec, nil
}

func readString(r io.Reader) (string, error) {
	var n uint16
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", eofIsUnexpected(err)
	}
	return string(buf), nil
}

// eofIsUnexpected converts a mid-record io.EOF into io.ErrUnexpectedEOF
// so truncated files are reported as corruption, not clean end-of-input.
func eofIsUnexpected(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}
