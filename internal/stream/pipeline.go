// Package stream implements the end-to-end semi-streaming pipeline of
// the paper's §VI: flow records are consumed one at a time, bucketed
// into consecutive time windows, and summarized by per-node sketches —
// so per-window signature sets are produced without ever materializing
// a communication graph. This is the deployment mode for graphs too
// large to store (the paper's "graph of all phone calls made over a
// week").
package stream

import (
	"fmt"
	"sort"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/graph"
	"graphsig/internal/netflow"
	"graphsig/internal/obs"
	"graphsig/internal/sketch"
)

// Config parameterizes a streaming signature pipeline.
type Config struct {
	// WindowSize is the aggregation interval.
	WindowSize time.Duration
	// Origin anchors window boundaries; zero means the first record's
	// start time.
	Origin time.Time
	// Classify assigns bipartite parts (nil = general graph).
	Classify netflow.Classifier
	// TCPOnly drops non-TCP records (the paper's setting).
	TCPOnly bool
	// K is the signature length extracted per window.
	K int
	// Scheme selects the extractor: "tt" or "ut".
	Scheme string
	// Sketch sizes the per-node state.
	Sketch sketch.StreamConfig
	// Registry, when non-nil, receives the pipeline's metrics
	// (window-close signature extraction latency). Nil disables
	// instrumentation.
	Registry *obs.Registry
}

func (c *Config) validate() error {
	switch {
	case c.WindowSize <= 0:
		return fmt.Errorf("stream: WindowSize must be positive")
	case c.K <= 0:
		return fmt.Errorf("stream: K must be positive")
	case c.Scheme != "tt" && c.Scheme != "ut":
		return fmt.Errorf("stream: scheme %q not streamable (want tt or ut)", c.Scheme)
	}
	return nil
}

// extractor is the common surface of StreamTT and StreamUT.
type extractor interface {
	Observe(src, dst graph.NodeID, weight float64) error
	Signature(v graph.NodeID, k int) (core.Signature, error)
	Sources() []graph.NodeID
}

// Pipeline ingests flow records in time order and emits one
// SignatureSet per completed window. Records may arrive slightly out of
// order within the current window; a record belonging to an already
// emitted window is rejected (the sketch state is gone).
type Pipeline struct {
	cfg      Config
	universe *graph.Universe

	originSet bool
	origin    time.Time
	window    int
	ingested  int

	current extractor

	closeSeconds *obs.Histogram // window-close signature extraction time
}

// NewPipeline builds a pipeline over a shared (possibly pre-populated)
// universe; nil allocates a fresh one.
func NewPipeline(cfg Config, u *graph.Universe) (*Pipeline, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	if cfg.Classify == nil {
		cfg.Classify = netflow.General
	}
	if u == nil {
		u = graph.NewUniverse()
	}
	p := &Pipeline{cfg: cfg, universe: u}
	if cfg.Registry != nil {
		p.closeSeconds = cfg.Registry.Histogram("pipeline_window_close_seconds",
			"signature extraction time per closed window")
	}
	if !cfg.Origin.IsZero() {
		p.origin = cfg.Origin
		p.originSet = true
	}
	p.current = p.newExtractor()
	return p, nil
}

func (p *Pipeline) newExtractor() extractor {
	scfg := p.cfg.Sketch
	if scfg.Key == nil {
		// Key the sketches and tie-breaks on the stable label hash, not
		// the NodeID: interning order is a per-process accident, and a
		// cluster shard must compute the same signature bytes for a
		// source as a single node holding the whole stream would.
		scfg.Key = p.universe.StableKey
	}
	if p.cfg.Scheme == "ut" {
		return sketch.NewStreamUT(scfg)
	}
	return sketch.NewStreamTT(scfg)
}

// Universe returns the shared label universe.
func (p *Pipeline) Universe() *graph.Universe { return p.universe }

// CurrentWindow reports the index of the window now accumulating.
func (p *Pipeline) CurrentWindow() int { return p.window }

// Origin reports the window origin once it is known — either from the
// config or from the first accepted record. Serving layers persist it
// (internal/wal) so a restarted pipeline keeps its window alignment.
func (p *Pipeline) Origin() (time.Time, bool) { return p.origin, p.originSet }

// Ingested reports the number of records accepted so far.
func (p *Pipeline) Ingested() int { return p.ingested }

// Ingest consumes one record. When the record starts a later window,
// every window up to it is closed and their signature sets returned
// (empty windows yield sets with zero sources).
func (p *Pipeline) Ingest(r netflow.Record) ([]*core.SignatureSet, error) {
	if err := r.Validate(); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if p.cfg.TCPOnly && r.Proto != netflow.TCP {
		return nil, nil
	}
	if !p.originSet {
		p.origin = r.Start
		p.originSet = true
	}
	d := r.Start.Sub(p.origin)
	if d < 0 {
		return nil, fmt.Errorf("stream: record at %v precedes origin %v", r.Start, p.origin)
	}
	idx := int(d / p.cfg.WindowSize)
	if idx < p.window {
		return nil, fmt.Errorf("stream: record at %v belongs to emitted window %d (current %d)", r.Start, idx, p.window)
	}
	var emitted []*core.SignatureSet
	for p.window < idx {
		set, err := p.closeWindow()
		if err != nil {
			return nil, err
		}
		emitted = append(emitted, set)
	}
	src, err := p.universe.Intern(r.Src, p.cfg.Classify(r.Src))
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	dst, err := p.universe.Intern(r.Dst, p.cfg.Classify(r.Dst))
	if err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	if err := p.current.Observe(src, dst, float64(r.Sessions)); err != nil {
		return nil, fmt.Errorf("stream: %w", err)
	}
	p.ingested++
	return emitted, nil
}

// Flush closes the current window and returns its signature set; the
// pipeline then continues with the next window (used at end of input).
func (p *Pipeline) Flush() (*core.SignatureSet, error) {
	return p.closeWindow()
}

func (p *Pipeline) closeWindow() (*core.SignatureSet, error) {
	begin := time.Now()
	defer p.closeSeconds.ObserveSince(begin)
	sources := p.current.Sources()
	// Bipartite discipline: signatures only for Part1 sources, matching
	// core.DefaultSources on materialized graphs.
	bip := p.universe.Bipartite()
	kept := sources[:0]
	for _, v := range sources {
		if !bip || p.universe.PartOf(v) == graph.Part1 {
			kept = append(kept, v)
		}
	}
	sort.Slice(kept, func(i, j int) bool { return kept[i] < kept[j] })
	sigs := make([]core.Signature, len(kept))
	for i, v := range kept {
		sig, err := p.current.Signature(v, p.cfg.K)
		if err != nil {
			return nil, fmt.Errorf("stream: window %d: %w", p.window, err)
		}
		sigs[i] = sig
	}
	set, err := core.NewSignatureSet(p.cfg.Scheme+"-stream", p.window, kept, sigs)
	if err != nil {
		return nil, fmt.Errorf("stream: window %d: %w", p.window, err)
	}
	p.window++
	p.current = p.newExtractor()
	return set, nil
}

// Run ingests a whole record slice (already time-ordered) and returns
// one signature set per window including the final partial window.
func Run(cfg Config, u *graph.Universe, records []netflow.Record) ([]*core.SignatureSet, error) {
	p, err := NewPipeline(cfg, u)
	if err != nil {
		return nil, err
	}
	var out []*core.SignatureSet
	for i := range records {
		emitted, err := p.Ingest(records[i])
		if err != nil {
			return nil, fmt.Errorf("stream: record %d: %w", i, err)
		}
		out = append(out, emitted...)
	}
	if p.Ingested() == 0 {
		return out, nil
	}
	last, err := p.Flush()
	if err != nil {
		return nil, err
	}
	return append(out, last), nil
}
