package stream

import (
	"sort"
	"testing"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/datagen"
	"graphsig/internal/graph"
	"graphsig/internal/netflow"
	"graphsig/internal/sketch"
)

var streamT0 = time.Date(2026, 2, 2, 0, 0, 0, 0, time.UTC)

func flowAt(src, dst string, offset time.Duration, sessions int) netflow.Record {
	return netflow.Record{
		Src: src, Dst: dst, Start: streamT0.Add(offset),
		Duration: time.Second, Sessions: sessions, Bytes: 10, Packets: 1,
		Proto: netflow.TCP,
	}
}

func streamConfig() Config {
	return Config{
		WindowSize: time.Hour,
		Origin:     streamT0,
		Classify:   netflow.PrefixClassifier("10."),
		TCPOnly:    true,
		K:          5,
		Scheme:     "tt",
		Sketch:     sketch.StreamConfig{Width: 1024, Depth: 5, Candidates: 64, Seed: 1},
	}
}

func TestPipelineValidation(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.WindowSize = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Scheme = "rwr3@0.1" },
	}
	for i, mutate := range bad {
		cfg := streamConfig()
		mutate(&cfg)
		if _, err := NewPipeline(cfg, nil); err == nil {
			t.Fatalf("mutation %d accepted", i)
		}
	}
}

func TestPipelineWindowRotation(t *testing.T) {
	p, err := NewPipeline(streamConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	// Window 0.
	for _, r := range []netflow.Record{
		flowAt("10.0.0.1", "e1", 0, 3),
		flowAt("10.0.0.1", "e2", 10*time.Minute, 1),
		flowAt("10.0.0.2", "e1", 20*time.Minute, 2),
	} {
		emitted, err := p.Ingest(r)
		if err != nil {
			t.Fatal(err)
		}
		if len(emitted) != 0 {
			t.Fatal("window emitted early")
		}
	}
	// A record three windows later closes windows 0, 1 and 2.
	emitted, err := p.Ingest(flowAt("10.0.0.1", "e3", 3*time.Hour+time.Minute, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 3 {
		t.Fatalf("emitted %d windows, want 3", len(emitted))
	}
	if emitted[0].Window != 0 || emitted[2].Window != 2 {
		t.Fatalf("window indices %d..%d", emitted[0].Window, emitted[2].Window)
	}
	if emitted[0].Len() != 2 {
		t.Fatalf("window 0 has %d sources", emitted[0].Len())
	}
	if emitted[1].Len() != 0 || emitted[2].Len() != 0 {
		t.Fatal("empty windows not empty")
	}
	h1, _ := p.Universe().Lookup("10.0.0.1")
	sig, ok := emitted[0].Get(h1)
	if !ok || sig.Len() != 2 {
		t.Fatalf("window-0 signature of 10.0.0.1: %v", sig)
	}
	// e1 with 3 of 4 sessions dominates.
	e1, _ := p.Universe().Lookup("e1")
	if sig.Nodes[0] != e1 || sig.Weights[0] != 0.75 {
		t.Fatalf("top talker = (%v, %g)", sig.Nodes[0], sig.Weights[0])
	}

	// Flush closes the partial fourth window.
	last, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if last.Window != 3 || last.Len() != 1 {
		t.Fatalf("flushed window %d with %d sources", last.Window, last.Len())
	}
	if p.CurrentWindow() != 4 {
		t.Fatalf("current window = %d", p.CurrentWindow())
	}
}

func TestPipelineRejectsRegression(t *testing.T) {
	p, err := NewPipeline(streamConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(flowAt("10.0.0.1", "e1", 2*time.Hour, 1)); err != nil {
		t.Fatal(err)
	}
	// Window 2 is current; a window-0 record must be rejected.
	if _, err := p.Ingest(flowAt("10.0.0.1", "e1", 0, 1)); err == nil {
		t.Fatal("regressing record accepted")
	}
	// Pre-origin records are rejected too.
	if _, err := p.Ingest(netflow.Record{
		Src: "10.0.0.1", Dst: "e1", Start: streamT0.Add(-time.Hour),
		Sessions: 1, Proto: netflow.TCP,
	}); err == nil {
		t.Fatal("pre-origin record accepted")
	}
}

func TestPipelineInvalidRecord(t *testing.T) {
	p, err := NewPipeline(streamConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(netflow.Record{Src: "a", Dst: "a", Start: streamT0, Sessions: 1, Proto: netflow.TCP}); err == nil {
		t.Fatal("self-flow accepted")
	}
	if _, err := p.Ingest(netflow.Record{Src: "a", Dst: "b", Start: streamT0, Sessions: 0, Proto: netflow.TCP}); err == nil {
		t.Fatal("zero-session record accepted")
	}
}

func TestPipelinePartConflict(t *testing.T) {
	u := graph.NewUniverse()
	u.MustIntern("10.0.0.1", graph.Part2) // conflicts with the classifier
	p, err := NewPipeline(streamConfig(), u)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(flowAt("10.0.0.1", "e1", 0, 1)); err == nil {
		t.Fatal("part conflict accepted")
	}
}

func TestRunEmptyAndUTScheme(t *testing.T) {
	sets, err := Run(streamConfig(), nil, nil)
	if err != nil || len(sets) != 0 {
		t.Fatalf("empty run: %v %v", sets, err)
	}
	cfg := streamConfig()
	cfg.Scheme = "ut"
	sets, err = Run(cfg, nil, []netflow.Record{
		flowAt("10.0.0.1", "e1", 0, 2),
		flowAt("10.0.0.2", "e1", time.Minute, 1),
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != 1 || sets[0].Len() != 2 {
		t.Fatalf("ut run: %d sets", len(sets))
	}
	if sets[0].Scheme != "ut-stream" {
		t.Fatalf("scheme = %s", sets[0].Scheme)
	}
}

func TestPipelineGeneralGraphSources(t *testing.T) {
	// Without a classifier the graph is general: every observed source
	// gets a signature, including "external" ones.
	cfg := streamConfig()
	cfg.Classify = nil
	p, err := NewPipeline(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(flowAt("a", "b", 0, 1)); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(flowAt("b", "a", time.Minute, 1)); err != nil {
		t.Fatal(err)
	}
	set, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 2 {
		t.Fatalf("general-graph sources = %d", set.Len())
	}
}

func TestPipelineTCPOnly(t *testing.T) {
	p, err := NewPipeline(streamConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	r := flowAt("10.0.0.1", "e1", 0, 1)
	r.Proto = netflow.UDP
	if _, err := p.Ingest(r); err != nil {
		t.Fatal(err)
	}
	if p.Ingested() != 0 {
		t.Fatal("UDP record ingested under TCPOnly")
	}
}

// labelEntry is a signature entry resolved to its label, for
// order-normalized comparison between universes.
type labelEntry struct {
	label  string
	weight float64
}

func labelEntries(u *graph.Universe, sig core.Signature) []labelEntry {
	out := make([]labelEntry, sig.Len())
	for i := range sig.Nodes {
		out[i] = labelEntry{label: u.Label(sig.Nodes[i]), weight: sig.Weights[i]}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].weight != out[j].weight {
			return out[i].weight > out[j].weight
		}
		return out[i].label < out[j].label
	})
	return out
}

// TestPipelineMatchesBatch compares the full streaming path against the
// materialized-graph batch path on a generated capture: with roomy
// sketches the per-window TT signatures must be identical.
func TestPipelineMatchesBatch(t *testing.T) {
	cfg := datagen.DefaultEnterpriseConfig(12)
	cfg.LocalHosts = 30
	cfg.ExternalHosts = 400
	cfg.Communities = 3
	cfg.Windows = 2
	cfg.MultiusageIndividuals = 2
	data, err := datagen.GenerateEnterprise(cfg)
	if err != nil {
		t.Fatal(err)
	}

	scfg := Config{
		WindowSize: cfg.WindowLength,
		Origin:     cfg.Origin,
		Classify:   datagen.LocalClassifier,
		TCPOnly:    true,
		K:          10,
		Scheme:     "tt",
		Sketch:     sketch.StreamConfig{Width: 4096, Depth: 5, Candidates: 256, Seed: 3},
	}
	// Pre-seed the stream universe with the batch universe's labels in
	// ID order so node identity coincides between the two paths.
	streamU := graph.NewUniverse()
	for id := 0; id < data.Universe.Size(); id++ {
		nid := graph.NodeID(id)
		streamU.MustIntern(data.Universe.Label(nid), data.Universe.PartOf(nid))
	}
	sets, err := Run(scfg, streamU, data.Records)
	if err != nil {
		t.Fatal(err)
	}
	if len(sets) != cfg.Windows {
		t.Fatalf("streamed %d windows, want %d", len(sets), cfg.Windows)
	}
	for wi, set := range sets {
		batch, err := core.ComputeSet(core.TopTalkers{}, data.Windows[wi],
			core.DefaultSources(data.Windows[wi]), 10)
		if err != nil {
			t.Fatal(err)
		}
		if set.Len() != batch.Len() {
			t.Fatalf("window %d: %d streamed sources vs %d batch", wi, set.Len(), batch.Len())
		}
		for i, v := range batch.Sources {
			// NodeIDs differ between universes; compare by label.
			label := data.Universe.Label(v)
			streamNode, ok := streamU.Lookup(label)
			if !ok {
				t.Fatalf("window %d: %q missing from stream universe", wi, label)
			}
			streamed, ok := set.Get(streamNode)
			if !ok {
				t.Fatalf("window %d: %q missing from stream", wi, label)
			}
			want := batch.Sigs[i]
			if streamed.Len() != want.Len() {
				t.Fatalf("window %d %q: len %d vs %d", wi, label, streamed.Len(), want.Len())
			}
			// The batch extractor breaks weight ties by NodeID, the
			// streaming one by stable label hash (so cluster shards agree
			// with single nodes). A tie straddling the k-cut may therefore
			// keep different members, but only at the boundary weight:
			// compare weights positionally and labels for every entry
			// strictly above the boundary.
			wantEntries := labelEntries(data.Universe, want)
			gotEntries := labelEntries(streamU, streamed)
			boundary := wantEntries[len(wantEntries)-1].weight
			for j := range wantEntries {
				if wantEntries[j].weight != gotEntries[j].weight {
					t.Fatalf("window %d %q entry %d weight: %g vs %g",
						wi, label, j, gotEntries[j].weight, wantEntries[j].weight)
				}
				if wantEntries[j].weight > boundary && wantEntries[j] != gotEntries[j] {
					t.Fatalf("window %d %q entry %d: (%s,%g) vs (%s,%g)",
						wi, label, j, gotEntries[j].label, gotEntries[j].weight,
						wantEntries[j].label, wantEntries[j].weight)
				}
			}
		}
	}
}

// TestPipelineFlushZeroIngested pins Flush semantics on a pipeline that
// never saw a record: it closes the (empty) current window and advances,
// so callers that flush unconditionally append one empty window per
// flush. The serving layer relies on this to skip flushing when nothing
// is pending.
func TestPipelineFlushZeroIngested(t *testing.T) {
	p, err := NewPipeline(streamConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	set, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if set.Window != 0 || set.Len() != 0 {
		t.Fatalf("flush of fresh pipeline gave window %d with %d sources", set.Window, set.Len())
	}
	if p.CurrentWindow() != 1 || p.Ingested() != 0 {
		t.Fatalf("after flush: window %d, ingested %d", p.CurrentWindow(), p.Ingested())
	}
	// A second flush closes the next empty window; ingest then resumes
	// in window 2 and a later record still emits every skipped window.
	if set, err = p.Flush(); err != nil || set.Window != 1 {
		t.Fatalf("second flush: window %d, err %v", set.Window, err)
	}
	if _, err := p.Ingest(flowAt("10.0.0.1", "e1", time.Hour, 1)); err == nil {
		t.Fatal("record for already-flushed window 1 accepted")
	}
	if _, err := p.Ingest(flowAt("10.0.0.1", "e1", 2*time.Hour, 1)); err != nil {
		t.Fatal(err)
	}
	emitted, err := p.Ingest(flowAt("10.0.0.1", "e1", 5*time.Hour, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 3 || emitted[0].Window != 2 || emitted[0].Len() != 1 {
		t.Fatalf("gap after flush emitted %d windows starting at %d", len(emitted), emitted[0].Window)
	}
}

// TestPipelineImplicitOrigin covers the Origin-less configuration: the
// first accepted record anchors the window grid, and anything earlier
// is rejected as pre-origin.
func TestPipelineImplicitOrigin(t *testing.T) {
	cfg := streamConfig()
	cfg.Origin = time.Time{}
	p, err := NewPipeline(cfg, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Non-TCP records are filtered before the origin latches.
	if _, err := p.Ingest(netflow.Record{
		Src: "10.0.0.9", Dst: "e9", Start: streamT0.Add(-time.Hour),
		Sessions: 1, Proto: netflow.UDP,
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Ingest(flowAt("10.0.0.1", "e1", 30*time.Minute, 2)); err != nil {
		t.Fatal(err)
	}
	// Earlier than the first accepted record: pre-origin.
	if _, err := p.Ingest(flowAt("10.0.0.1", "e1", 0, 1)); err == nil {
		t.Fatal("pre-origin record accepted under implicit origin")
	}
	// The grid is anchored at +30min, so +1h29m is still window 0 and
	// +1h31m starts window 1.
	if emitted, err := p.Ingest(flowAt("10.0.0.2", "e1", time.Hour+29*time.Minute, 1)); err != nil || len(emitted) != 0 {
		t.Fatalf("same-window record: emitted %d, err %v", len(emitted), err)
	}
	emitted, err := p.Ingest(flowAt("10.0.0.1", "e2", time.Hour+31*time.Minute, 1))
	if err != nil {
		t.Fatal(err)
	}
	if len(emitted) != 1 || emitted[0].Window != 0 || emitted[0].Len() != 2 {
		t.Fatalf("window 0 emission: %d sets", len(emitted))
	}
}
