// Package perturb implements the paper's two controlled graph
// modifications: the random edge insertion/deletion used to measure
// signature robustness (§IV-C) and the label-masquerade simulation used
// to evaluate Algorithm 1 (§V).
package perturb

import (
	"fmt"

	"graphsig/internal/graph"
	"graphsig/internal/stats"
)

// Options parameterizes the §IV-C perturbation: insert α·|E| fresh
// edges and perform β·|E| unit-weight decrements.
type Options struct {
	// InsertFrac is α.
	InsertFrac float64
	// DeleteFrac is β.
	DeleteFrac float64
	// Seed drives all sampling.
	Seed int64
}

func (o Options) validate() error {
	if o.InsertFrac < 0 || o.DeleteFrac < 0 {
		return fmt.Errorf("perturb: fractions must be non-negative (α=%g β=%g)", o.InsertFrac, o.DeleteFrac)
	}
	return nil
}

// Perturb produces G′_t from G_t per §IV-C:
//
//   - Insertions: α|E| times, sample a source v′ proportional to
//     out-degree and a destination u′ proportional to in-degree (from
//     Part1/Part2 respectively when the graph is bipartite), then assign
//     the edge a weight drawn from the empirical distribution of all
//     edge weights, independent of any existing C[v′,u′].
//   - Deletions: β|E| times, sample an existing edge proportional to its
//     current weight and decrement it by one unit; edges at zero vanish.
func Perturb(w *graph.Window, opts Options) (*graph.Window, error) {
	if err := opts.validate(); err != nil {
		return nil, err
	}
	rng := stats.NewRNG(opts.Seed)
	edges := w.Edges()
	if len(edges) == 0 {
		return graph.FromEdges(w.Universe(), w.Index(), nil)
	}

	weights := map[[2]graph.NodeID]float64{}
	for _, e := range edges {
		weights[[2]graph.NodeID{e.From, e.To}] = e.Weight
	}

	// ---- Insertions ----
	nInsert := int(opts.InsertFrac * float64(len(edges)))
	if nInsert > 0 {
		srcSampler, dstSampler, srcIDs, dstIDs, err := endpointSamplers(w, rng)
		if err != nil {
			return nil, err
		}
		for i := 0; i < nInsert; i++ {
			var v, u graph.NodeID
			for attempt := 0; ; attempt++ {
				v = srcIDs[srcSampler.Sample()]
				u = dstIDs[dstSampler.Sample()]
				if v != u {
					break
				}
				if attempt > 1000 {
					return nil, fmt.Errorf("perturb: cannot sample a non-loop edge")
				}
			}
			// Weight from the empirical edge-weight distribution.
			wt := edges[rng.Intn(len(edges))].Weight
			weights[[2]graph.NodeID{v, u}] = wt
		}
	}

	// ---- Deletions ----
	nDelete := int(opts.DeleteFrac * float64(len(edges)))
	if nDelete > 0 {
		// Deletions sample the *original* edge population proportional
		// to current weight; a Fenwick tree keeps sampling exact as
		// decrements shift the distribution.
		cur := make([]float64, len(edges))
		for i, e := range edges {
			cur[i] = e.Weight
		}
		fw, err := stats.NewFenwick(cur)
		if err != nil {
			return nil, fmt.Errorf("perturb: %w", err)
		}
		for i := 0; i < nDelete; i++ {
			if fw.Total() <= 0 {
				break
			}
			idx := fw.Sample(rng)
			if fw.Get(idx) <= 0 {
				continue
			}
			fw.Add(idx, -1)
			key := [2]graph.NodeID{edges[idx].From, edges[idx].To}
			weights[key]--
			if weights[key] <= 0 {
				delete(weights, key)
			}
		}
	}

	out := make([]graph.Edge, 0, len(weights))
	for k, wt := range weights {
		if wt > 0 {
			out = append(out, graph.Edge{From: k[0], To: k[1], Weight: wt})
		}
	}
	return graph.FromEdges(w.Universe(), w.Index(), out)
}

// endpointSamplers builds degree-proportional samplers over eligible
// sources (positive out-degree; Part1 when bipartite) and destinations
// (positive in-degree; Part2 when bipartite).
func endpointSamplers(w *graph.Window, rng *stats.RNG) (src, dst *stats.Weighted, srcIDs, dstIDs []graph.NodeID, err error) {
	bip := w.Universe().Bipartite()
	var srcW, dstW []float64
	for v := 0; v < w.NumNodes(); v++ {
		id := graph.NodeID(v)
		part := w.Universe().PartOf(id)
		if od := w.OutDegree(id); od > 0 && (!bip || part == graph.Part1) {
			srcIDs = append(srcIDs, id)
			srcW = append(srcW, float64(od))
		}
		if ind := w.InDegree(id); ind > 0 && (!bip || part == graph.Part2) {
			dstIDs = append(dstIDs, id)
			dstW = append(dstW, float64(ind))
		}
	}
	if len(srcIDs) == 0 || len(dstIDs) == 0 {
		return nil, nil, nil, nil, fmt.Errorf("perturb: graph has no eligible endpoints")
	}
	src, err = stats.NewWeighted(rng.Split("perturb-src"), srcW)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("perturb: src sampler: %w", err)
	}
	dst, err = stats.NewWeighted(rng.Split("perturb-dst"), dstW)
	if err != nil {
		return nil, nil, nil, nil, fmt.Errorf("perturb: dst sampler: %w", err)
	}
	return src, dst, srcIDs, dstIDs, nil
}
