package perturb

import (
	"fmt"
	"sort"

	"graphsig/internal/graph"
	"graphsig/internal/stats"
)

// Masquerade records a simulated label-masquerade event set E_P (§V): a
// bijective mapping over the perturbed node set P. A pair v→u means the
// individual behind v re-appears under label u in the later window
// (all of v's communications are relabelled to u).
type Masquerade struct {
	// Mapping holds v → u for every v ∈ P.
	Mapping map[graph.NodeID]graph.NodeID
}

// Perturbed returns P, the sorted set of relabelled nodes.
func (m *Masquerade) Perturbed() []graph.NodeID {
	out := make([]graph.NodeID, 0, len(m.Mapping))
	for v := range m.Mapping {
		out = append(out, v)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Contains reports whether v ∈ P.
func (m *Masquerade) Contains(v graph.NodeID) bool {
	_, ok := m.Mapping[v]
	return ok
}

// SimulateMasquerade relabels f·|candidates| randomly selected nodes of
// the window via a fixed-point-free bijection (a random cyclic
// permutation of P) and rebuilds the graph with all of each node's
// communications carried over to its new label. The returned Masquerade
// is the ground truth E_P that detection must recover.
//
// candidates is typically the window's Part1 sources (the local hosts
// the paper monitors). frac values yielding fewer than 2 nodes produce
// an empty masquerade: a bijection with no fixed points needs |P| ≥ 2.
func SimulateMasquerade(w *graph.Window, candidates []graph.NodeID, frac float64, seed int64) (*graph.Window, *Masquerade, error) {
	if frac < 0 || frac > 1 {
		return nil, nil, fmt.Errorf("perturb: masquerade fraction %g outside [0,1]", frac)
	}
	rng := stats.NewRNG(seed)
	n := int(frac * float64(len(candidates)))
	m := &Masquerade{Mapping: map[graph.NodeID]graph.NodeID{}}
	if n >= 2 {
		// Choose P uniformly and relabel along a random cycle, which is
		// a bijection with no fixed points.
		perm := rng.Perm(len(candidates))
		p := make([]graph.NodeID, n)
		for i := 0; i < n; i++ {
			p[i] = candidates[perm[i]]
		}
		for i, v := range p {
			m.Mapping[v] = p[(i+1)%n]
		}
	}
	relabel := func(v graph.NodeID) graph.NodeID {
		if u, ok := m.Mapping[v]; ok {
			return u
		}
		return v
	}
	edges := w.Edges()
	out := make([]graph.Edge, 0, len(edges))
	for _, e := range edges {
		from, to := relabel(e.From), relabel(e.To)
		if from == to {
			// A cycle of length 2 can map an edge onto itself
			// (v→u while u also communicated with v); drop such
			// degenerate self-loops.
			continue
		}
		out = append(out, graph.Edge{From: from, To: to, Weight: e.Weight})
	}
	win, err := graph.FromEdges(w.Universe(), w.Index(), out)
	if err != nil {
		return nil, nil, fmt.Errorf("perturb: masquerade rebuild: %w", err)
	}
	return win, m, nil
}
