package perturb

import (
	"math"
	"testing"

	"graphsig/internal/graph"
)

// bipartiteWindow builds hosts h0..h3 → externals e0..e5 with varied
// weights.
func bipartiteWindow(t *testing.T) *graph.Window {
	t.Helper()
	u := graph.NewUniverse()
	var hosts, exts []graph.NodeID
	for i := 0; i < 4; i++ {
		hosts = append(hosts, u.MustIntern(hostLabel(i), graph.Part1))
	}
	for i := 0; i < 6; i++ {
		exts = append(exts, u.MustIntern(extLabel(i), graph.Part2))
	}
	b := graph.NewBuilder(u, 0)
	w := 1.0
	for _, h := range hosts {
		for j, e := range exts {
			if (int(h)+j)%2 == 0 {
				if err := b.Add(h, e, w); err != nil {
					t.Fatal(err)
				}
				w += 1
			}
		}
	}
	return b.Build()
}

func hostLabel(i int) string { return "h" + string(rune('0'+i)) }
func extLabel(i int) string  { return "e" + string(rune('0'+i)) }

func TestPerturbValidation(t *testing.T) {
	w := bipartiteWindow(t)
	if _, err := Perturb(w, Options{InsertFrac: -1}); err == nil {
		t.Fatal("negative α accepted")
	}
	if _, err := Perturb(w, Options{DeleteFrac: -0.5}); err == nil {
		t.Fatal("negative β accepted")
	}
}

func TestPerturbNoOp(t *testing.T) {
	w := bipartiteWindow(t)
	got, err := Perturb(w, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != w.NumEdges() || got.TotalWeight() != w.TotalWeight() {
		t.Fatal("zero-fraction perturbation changed the graph")
	}
}

func TestPerturbDeterminism(t *testing.T) {
	w := bipartiteWindow(t)
	opts := Options{InsertFrac: 0.3, DeleteFrac: 0.3, Seed: 5}
	a, err := Perturb(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Perturb(w, opts)
	if err != nil {
		t.Fatal(err)
	}
	ae, be := a.Edges(), b.Edges()
	if len(ae) != len(be) {
		t.Fatal("same seed produced different perturbations")
	}
	for i := range ae {
		if ae[i] != be[i] {
			t.Fatal("same seed produced different perturbations")
		}
	}
}

func TestPerturbDeletionsReduceWeight(t *testing.T) {
	w := bipartiteWindow(t)
	got, err := Perturb(w, Options{DeleteFrac: 0.5, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	nDelete := int(0.5 * float64(w.NumEdges()))
	if math.Abs(w.TotalWeight()-got.TotalWeight()-float64(nDelete)) > 1e-9 {
		t.Fatalf("deleted weight %g, want %d", w.TotalWeight()-got.TotalWeight(), nDelete)
	}
	// Deletion alone never adds edges.
	if got.NumEdges() > w.NumEdges() {
		t.Fatal("deletions added edges")
	}
}

func TestPerturbInsertionsRespectPartition(t *testing.T) {
	w := bipartiteWindow(t)
	got, err := Perturb(w, Options{InsertFrac: 1.0, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	u := w.Universe()
	for _, e := range got.Edges() {
		if u.PartOf(e.From) != graph.Part1 || u.PartOf(e.To) != graph.Part2 {
			t.Fatalf("inserted edge (%d,%d) violates the partition", e.From, e.To)
		}
		if e.Weight <= 0 {
			t.Fatal("non-positive edge weight after perturbation")
		}
	}
	if got.NumEdges() < w.NumEdges() {
		t.Fatal("insertion-only perturbation lost edges")
	}
}

func TestPerturbInsertedWeightsFromEmpiricalDistribution(t *testing.T) {
	w := bipartiteWindow(t)
	// Collect the set of original weights; every inserted edge's weight
	// must be one of them (the §IV-C "total distribution of all edge
	// weights").
	legal := map[float64]bool{}
	for _, e := range w.Edges() {
		legal[e.Weight] = true
	}
	got, err := Perturb(w, Options{InsertFrac: 2.0, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range got.Edges() {
		if !legal[e.Weight] {
			// The edge may be an untouched original. Check identity.
			if w.Weight(e.From, e.To) == e.Weight {
				continue
			}
			t.Fatalf("edge (%d,%d) weight %g outside the empirical distribution", e.From, e.To, e.Weight)
		}
	}
}

func TestPerturbEmptyGraph(t *testing.T) {
	u := graph.NewUniverse()
	u.MustIntern("a", graph.PartNone)
	w, err := graph.FromEdges(u, 0, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Perturb(w, Options{InsertFrac: 0.5, DeleteFrac: 0.5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if got.NumEdges() != 0 {
		t.Fatal("empty graph grew edges")
	}
}
