package perturb

import (
	"testing"

	"graphsig/internal/graph"
)

func TestSimulateMasqueradeBijection(t *testing.T) {
	w := bipartiteWindow(t)
	candidates := w.Universe().PartMembers(graph.Part1)
	got, m, err := SimulateMasquerade(w, candidates, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Mapping) != len(candidates) {
		t.Fatalf("mapping covers %d of %d", len(m.Mapping), len(candidates))
	}
	// Bijective with no fixed points.
	seen := map[graph.NodeID]bool{}
	for v, u := range m.Mapping {
		if v == u {
			t.Fatal("fixed point in masquerade mapping")
		}
		if seen[u] {
			t.Fatal("mapping not injective")
		}
		seen[u] = true
		if !m.Contains(v) {
			t.Fatal("Contains inconsistent")
		}
	}
	if len(m.Perturbed()) != len(candidates) {
		t.Fatal("Perturbed() wrong size")
	}
	// Out-weight moves with the relabelling.
	for v, u := range m.Mapping {
		if got.OutWeightSum(u) != w.OutWeightSum(v) {
			t.Fatalf("traffic of %d (now %d) changed: %g vs %g",
				v, u, got.OutWeightSum(u), w.OutWeightSum(v))
		}
	}
}

func TestSimulateMasqueradeFraction(t *testing.T) {
	w := bipartiteWindow(t)
	candidates := w.Universe().PartMembers(graph.Part1)
	_, m, err := SimulateMasquerade(w, candidates, 0.5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Mapping) != 2 { // 0.5 × 4
		t.Fatalf("|P| = %d, want 2", len(m.Mapping))
	}
}

func TestSimulateMasqueradeTooSmall(t *testing.T) {
	w := bipartiteWindow(t)
	candidates := w.Universe().PartMembers(graph.Part1)
	// A fraction yielding fewer than 2 nodes produces no masquerade.
	got, m, err := SimulateMasquerade(w, candidates, 0.1, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Mapping) != 0 {
		t.Fatalf("|P| = %d, want 0", len(m.Mapping))
	}
	if got.TotalWeight() != w.TotalWeight() {
		t.Fatal("no-op masquerade changed the graph")
	}
}

func TestSimulateMasqueradeValidation(t *testing.T) {
	w := bipartiteWindow(t)
	candidates := w.Universe().PartMembers(graph.Part1)
	for _, f := range []float64{-0.1, 1.1} {
		if _, _, err := SimulateMasquerade(w, candidates, f, 1); err == nil {
			t.Fatalf("fraction %g accepted", f)
		}
	}
}

func TestSimulateMasqueradeDeterminism(t *testing.T) {
	w := bipartiteWindow(t)
	candidates := w.Universe().PartMembers(graph.Part1)
	_, m1, err := SimulateMasquerade(w, candidates, 0.75, 6)
	if err != nil {
		t.Fatal(err)
	}
	_, m2, err := SimulateMasquerade(w, candidates, 0.75, 6)
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Mapping) != len(m2.Mapping) {
		t.Fatal("same seed produced different mappings")
	}
	for v, u := range m1.Mapping {
		if m2.Mapping[v] != u {
			t.Fatal("same seed produced different mappings")
		}
	}
}
