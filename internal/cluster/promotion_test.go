package cluster

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphsig/internal/datagen"
	"graphsig/internal/server"
)

// catchUpToPrimary blocks until the follower's cursor reaches the
// primary's durable tail (or fails the test).
func catchUpToPrimary(t *testing.T, f *Follower, pc *server.Client) {
	t.Helper()
	rs, err := pc.ReplicationStatus()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := f.Stats()
		if st.Fatal != "" {
			t.Fatalf("follower died: %s", st.Fatal)
		}
		if st.Gen > rs.Gen || (st.Gen == rs.Gen && st.Offset >= rs.DurableSize) {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached primary cursor (%d,%d): %+v", rs.Gen, rs.DurableSize, st)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWatchEntriesSurvivePromotion pins the watchlist replication
// contract end to end: watch entries added on the primary are
// WAL-shipped (frame kinds 3/4), so a follower promoted after the
// primary dies must hold the full watchlist, keep screening windows
// that close after the promotion, and end with a hit log bit-identical
// to a single node that saw everything.
func TestWatchEntriesSurvivePromotion(t *testing.T) {
	gcfg := datagen.DefaultEnterpriseConfig(53)
	gcfg.LocalHosts = 12
	gcfg.ExternalHosts = 150
	gcfg.Windows = 3
	gcfg.MultiusageIndividuals = 1
	data, err := datagen.GenerateEnterprise(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	watchDist := server.Float64(0.9)

	_, pts := newTestNode(t, server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		WatchMaxDist:  watchDist,
		SnapshotDir:   t.TempDir(),
		Replicate:     true,
		Node:          &server.Identity{Role: "primary"},
	})
	pc := server.NewClient(pts.URL)
	refSrv, refTS := newTestNode(t, server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		WatchMaxDist:  watchDist,
	})
	refClient := server.NewClient(refTS.URL)

	f, err := NewFollower(FollowerConfig{
		Primary:       []string{pts.URL},
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		WatchMaxDist:  watchDist,
		Poll:          5 * time.Millisecond,
		ChunkBytes:    2048,
		PromoteDir:    t.TempDir(),
		Node:          &server.Identity{Role: "follower"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	ingest := func(c *server.Client, lo, hi int) {
		t.Helper()
		const batchSize = 400
		for i := lo; i < hi; i += batchSize {
			end := min(i+batchSize, hi)
			if _, err := c.IngestBatch(fmt.Sprintf("wp-%06d", i), data.Records[i:end]); err != nil {
				t.Fatal(err)
			}
		}
	}

	// First half plus the watch entries land on the live primary. Both
	// add forms ship: a label add (archived history replayed as
	// explicit-signature WAL frames) and an explicit-signature add.
	half := len(data.Records) / 2
	ingest(pc, 0, half)
	ingest(refClient, 0, half)
	pairs := data.Truth.MultiusageSets()
	if len(pairs) == 0 {
		t.Fatal("workload has no multiusage ground truth")
	}
	watched := pairs[0][0]
	for _, c := range []*server.Client{pc, refClient} {
		if _, err := c.WatchlistAdd(server.WatchlistAddRequest{Individual: "case-0", Label: watched}); err != nil {
			t.Fatalf("watchlist add: %v", err)
		}
	}

	catchUpToPrimary(t, f, pc)

	// Kill the primary, promote the follower, and land the second half
	// through the promoted node: its inherited watchlist must screen
	// these windows as they close.
	pts.Close()
	promoted, err := f.Promote()
	if err != nil {
		t.Fatal(err)
	}
	fts := httptest.NewServer(f.Handler())
	defer fts.Close()
	fc := server.NewClient(fts.URL)
	ingest(fc, half, len(data.Records))
	ingest(refClient, half, len(data.Records))
	for _, s := range []*server.Server{promoted, refSrv} {
		if _, err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	fhits, err := fc.WatchlistHits()
	if err != nil {
		t.Fatal(err)
	}
	rhits, err := refClient.WatchlistHits()
	if err != nil {
		t.Fatal(err)
	}
	if len(rhits.Hits) == 0 {
		t.Fatal("reference recorded no watch hits; the scenario is vacuous")
	}
	// Within one window, screening order over labels is not part of the
	// contract; compare under the canonical hit order.
	sortHits(fhits.Hits)
	sortHits(rhits.Hits)
	if fj, rj := mustJSON(t, fhits.Hits), mustJSON(t, rhits.Hits); fj != rj {
		t.Fatalf("promoted node's hit log diverged:\npromoted:  %s\nreference: %s", fj, rj)
	}
	// At least one hit must postdate the promotion — otherwise this
	// proved only that old hits were shipped, not that the watchlist
	// itself survived to screen new windows.
	post := false
	for _, h := range fhits.Hits {
		if h.Window >= gcfg.Windows-1 {
			post = true
		}
	}
	if !post {
		t.Fatalf("no watch hit after promotion (hits: %s)", mustJSON(t, fhits.Hits))
	}
}

// TestFollowerSegmentsBitwise: a follower configured with a segment
// dir compacts ring evictions of the shipped WAL into cold segment
// files that must agree bitwise with the primary's — the block codec
// and compaction boundaries are deterministic functions of the window
// sequence, which replication preserves exactly.
func TestFollowerSegmentsBitwise(t *testing.T) {
	gcfg := datagen.DefaultEnterpriseConfig(67)
	gcfg.LocalHosts = 12
	gcfg.ExternalHosts = 120
	gcfg.Windows = 10
	gcfg.MultiusageIndividuals = 1
	data, err := datagen.GenerateEnterprise(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	segPrimary, segFollower := t.TempDir(), t.TempDir()
	_, pts := newTestNode(t, server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 3,
		SnapshotDir:   t.TempDir(),
		Replicate:     true,
		SegmentDir:    segPrimary,
		Node:          &server.Identity{Role: "primary"},
	})
	pc := server.NewClient(pts.URL)

	f, err := NewFollower(FollowerConfig{
		Primary:       []string{pts.URL},
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 3,
		Poll:          5 * time.Millisecond,
		ChunkBytes:    4096,
		SegmentDir:    segFollower,
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	const batchSize = 300
	for i := 0; i < len(data.Records); i += batchSize {
		end := min(i+batchSize, len(data.Records))
		if _, err := pc.IngestBatch(fmt.Sprintf("seg-%06d", i), data.Records[i:end]); err != nil {
			t.Fatal(err)
		}
	}
	catchUpToPrimary(t, f, pc)

	list := func(dir string) []string {
		t.Helper()
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for _, e := range ents {
			out = append(out, e.Name())
		}
		return out
	}
	pFiles := list(segPrimary)
	if len(pFiles) == 0 {
		t.Fatal("primary compacted no segments; the scenario is vacuous")
	}
	fFiles := list(segFollower)
	if pj, fj := mustJSON(t, pFiles), mustJSON(t, fFiles); pj != fj {
		t.Fatalf("segment file sets differ:\nprimary:  %s\nfollower: %s", pj, fj)
	}
	for _, name := range pFiles {
		pb, err := os.ReadFile(filepath.Join(segPrimary, name))
		if err != nil {
			t.Fatal(err)
		}
		fb, err := os.ReadFile(filepath.Join(segFollower, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(pb, fb) {
			t.Fatalf("segment %s differs between primary and follower", name)
		}
	}

	// Deep history through the follower's read API reaches into its
	// segments and matches the primary's answer entry for entry.
	fts := httptest.NewServer(f.Handler())
	defer fts.Close()
	fc := server.NewClient(fts.URL)
	compared := 0
	seen := map[string]bool{}
	for _, rec := range data.Records {
		if seen[rec.Src] {
			continue
		}
		seen[rec.Src] = true
		q := server.HistoryQuery{Limit: -1}
		ph, perr := pc.HistoryRange(rec.Src, q)
		fh, ferr := fc.HistoryRange(rec.Src, q)
		if (perr != nil) != (ferr != nil) {
			t.Fatalf("history %q: primary err %v, follower err %v", rec.Src, perr, ferr)
		}
		if perr != nil {
			continue
		}
		if pj, fj := mustJSON(t, ph), mustJSON(t, fh); pj != fj {
			t.Fatalf("deep history %q diverged:\nprimary:  %s\nfollower: %s", rec.Src, pj, fj)
		}
		if len(ph.History) > 3 { // reaches past the 3-window ring into segments
			compared++
		}
	}
	if compared < 3 {
		t.Fatalf("only %d labels had segment-depth history", compared)
	}
}
