package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sort"
	"testing"
	"time"

	"graphsig/internal/datagen"
	"graphsig/internal/netflow"
	"graphsig/internal/server"
	"graphsig/internal/sketch"
	"graphsig/internal/stream"
)

// testStreamConfig builds the pipeline configuration every node in a
// test topology shares — identical configuration is the cluster
// contract, so one constructor keeps the tests honest.
func testStreamConfig(gcfg datagen.EnterpriseConfig) stream.Config {
	return stream.Config{
		WindowSize: gcfg.WindowLength,
		Origin:     gcfg.Origin,
		Classify:   datagen.LocalClassifier,
		TCPOnly:    true,
		K:          10,
		Scheme:     "tt",
		Sketch:     sketch.StreamConfig{Width: 2048, Depth: 4, Candidates: 128, Seed: 3},
	}
}

// newTestNode boots one sigserverd-equivalent server and serves it on
// an ephemeral port.
func newTestNode(t *testing.T, cfg server.Config) (*server.Server, *httptest.Server) {
	t.Helper()
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Abort() })
	return srv, ts
}

func mustJSON(t *testing.T, v any) string {
	t.Helper()
	b, err := json.Marshal(v)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// sortHits applies the router's watch-hit order so single-node hit
// logs (which are chronological) compare against merged ones.
func sortHits(hits []server.WatchHitJSON) {
	sort.Slice(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Individual != b.Individual {
			return a.Individual < b.Individual
		}
		return a.ArchivedWindow < b.ArchivedWindow
	})
}

// TestClusterSmokeBitIdentical is the tentpole acceptance test: a
// 2-shard router topology must answer search, anomaly and watchlist
// queries bit-identically to one node holding the union of the data.
func TestClusterSmokeBitIdentical(t *testing.T) {
	gcfg := datagen.DefaultEnterpriseConfig(17)
	gcfg.LocalHosts = 20
	gcfg.ExternalHosts = 250
	gcfg.Communities = 3
	gcfg.Windows = 3
	gcfg.MultiusageIndividuals = 2
	data, err := datagen.GenerateEnterprise(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	baseCfg := func() server.Config {
		return server.Config{
			Stream:        testStreamConfig(gcfg),
			StoreCapacity: 8,
			WatchMaxDist:  server.Float64(0.9),
		}
	}
	srvA, tsA := newTestNode(t, baseCfg())
	srvB, tsB := newTestNode(t, baseCfg())
	refSrv, refTS := newTestNode(t, baseCfg())
	refClient := server.NewClient(refTS.URL)

	rt, err := NewRouter(Config{
		Shards:  [][]string{{tsA.URL}, {tsB.URL}},
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Same stream through both worlds, batch by batch; per-batch
	// accounting must already agree.
	const batchSize = 500
	for i := 0; i < len(data.Records); i += batchSize {
		end := min(i+batchSize, len(data.Records))
		batch := data.Records[i:end]
		id := fmt.Sprintf("smoke-%06d", i)
		cres, err := rt.Ingest(id, batch)
		if err != nil {
			t.Fatalf("routed ingest %s: %v", id, err)
		}
		rres, err := refClient.IngestBatch(id, batch)
		if err != nil {
			t.Fatalf("reference ingest %s: %v", id, err)
		}
		if cres.Accepted != rres.Accepted || cres.Dropped != rres.Dropped || cres.Rejected != rres.Rejected {
			t.Fatalf("batch %s accounting diverged: cluster %+v, single %+v", id, cres.IngestResult, rres)
		}
		if cres.ShardsOK != cres.ShardsTotal {
			t.Fatalf("batch %s landed on %d/%d shards", id, cres.ShardsOK, cres.ShardsTotal)
		}
	}

	// Watch one planted multiusage label in both worlds before the
	// final window closes, so screening runs on the same evidence.
	pairs := data.Truth.MultiusageSets()
	if len(pairs) == 0 {
		t.Fatal("workload has no multiusage ground truth")
	}
	watched := pairs[0][0]
	if _, err := rt.WatchlistAdd(server.WatchlistAddRequest{Individual: "case-0", Label: watched}); err != nil {
		t.Fatalf("cluster watchlist add: %v", err)
	}
	if _, err := refClient.WatchlistAdd(server.WatchlistAddRequest{Individual: "case-0", Label: watched}); err != nil {
		t.Fatalf("reference watchlist add: %v", err)
	}

	// Close the final partial window everywhere. Shard window close is
	// lazy (driven by each shard's own record arrivals), so this is the
	// comparison barrier.
	for _, s := range []*server.Server{srvA, srvB, refSrv} {
		if _, err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	if got, want := srvA.Store().Len()+srvB.Store().Len(), 0; got == want {
		t.Fatal("shards archived nothing; the workload never reached them")
	}

	// Every source label queried through both worlds: identical errors,
	// and bit-identical hit lists (JSON is the wire format, so equality
	// of the encoding is the real contract).
	seen := map[string]bool{}
	compared := 0
	for _, rec := range data.Records {
		if seen[rec.Src] {
			continue
		}
		seen[rec.Src] = true
		req := server.SearchRequest{Label: rec.Src, K: 10, MaxDist: 0.95}
		cres, cerr := rt.Search(req)
		rres, rerr := refClient.Search(req)
		if (cerr != nil) != (rerr != nil) {
			t.Fatalf("search %q: cluster err %v, single err %v", rec.Src, cerr, rerr)
		}
		if cerr != nil {
			continue
		}
		if cj, rj := mustJSON(t, cres.Hits), mustJSON(t, rres.Hits); cj != rj {
			t.Fatalf("search %q diverged:\ncluster: %s\nsingle:  %s", rec.Src, cj, rj)
		}
		compared++
	}
	if compared < 10 {
		t.Fatalf("only %d labels compared; workload too sparse to prove anything", compared)
	}

	// Batch search: one routed fan-out answering many slots must match
	// the single node's batch AND the equivalent single routed searches,
	// slot for slot, with per-slot errors agreeing on the bad slot.
	var batchQ []server.SearchRequest
	batchSeen := map[string]bool{}
	for _, rec := range data.Records {
		if batchSeen[rec.Src] {
			continue
		}
		batchSeen[rec.Src] = true
		batchQ = append(batchQ, server.SearchRequest{Label: rec.Src, K: 10, MaxDist: 0.95})
		if len(batchQ) == 12 {
			break
		}
	}
	batchQ = append(batchQ, server.SearchRequest{Label: "no-such-host"})
	cbatch, err := rt.SearchBatch(server.BatchSearchRequest{Queries: batchQ})
	if err != nil {
		t.Fatalf("cluster batch search: %v", err)
	}
	if cbatch.ShardsOK != cbatch.ShardsTotal {
		t.Fatalf("batch search degraded: %d/%d shards", cbatch.ShardsOK, cbatch.ShardsTotal)
	}
	rbatch, err := refClient.SearchBatch(server.BatchSearchRequest{Queries: batchQ})
	if err != nil {
		t.Fatalf("reference batch search: %v", err)
	}
	if len(cbatch.Results) != len(batchQ) || len(rbatch.Results) != len(batchQ) {
		t.Fatalf("batch sizes: cluster %d, single %d, want %d", len(cbatch.Results), len(rbatch.Results), len(batchQ))
	}
	for i := range batchQ {
		cr, rr := cbatch.Results[i], rbatch.Results[i]
		if (cr.Error != "") != (rr.Error != "") {
			t.Fatalf("batch slot %d error parity: cluster %q, single %q", i, cr.Error, rr.Error)
		}
		if cr.Error != "" {
			continue
		}
		if cj, rj := mustJSON(t, cr.Hits), mustJSON(t, rr.Hits); cj != rj {
			t.Fatalf("batch slot %d diverged from single node:\ncluster: %s\nsingle:  %s", i, cj, rj)
		}
		sres, serr := rt.Search(batchQ[i])
		if serr != nil {
			t.Fatalf("routed single search %d: %v", i, serr)
		}
		if cj, sj := mustJSON(t, cr.Hits), mustJSON(t, sres.Hits); cj != sj {
			t.Fatalf("batch slot %d diverged from routed single:\nbatch:  %s\nsingle: %s", i, cj, sj)
		}
	}
	if cbatch.Results[len(batchQ)-1].Error == "" {
		t.Fatal("unknown-label batch slot carried no error")
	}

	// Anomalies: same population statistics, same flagged set, bitwise.
	cano, err := rt.Anomalies("", 2.0)
	if err != nil {
		t.Fatalf("cluster anomalies: %v", err)
	}
	if cano.ShardsOK != cano.ShardsTotal {
		t.Fatalf("anomalies degraded: %d/%d shards", cano.ShardsOK, cano.ShardsTotal)
	}
	rano, err := refClient.Anomalies(2.0)
	if err != nil {
		t.Fatalf("reference anomalies: %v", err)
	}
	if cano.FromWindow != rano.FromWindow || cano.ToWindow != rano.ToWindow {
		t.Fatalf("anomaly windows diverged: cluster (%d,%d), single (%d,%d)",
			cano.FromWindow, cano.ToWindow, rano.FromWindow, rano.ToWindow)
	}
	if cano.Mean != rano.Mean || cano.StdDev != rano.StdDev {
		t.Fatalf("anomaly statistics diverged: cluster (%v,%v), single (%v,%v)",
			cano.Mean, cano.StdDev, rano.Mean, rano.StdDev)
	}
	if cj, rj := mustJSON(t, cano.Anomalies), mustJSON(t, rano.Anomalies); cj != rj {
		t.Fatalf("anomaly sets diverged:\ncluster: %s\nsingle:  %s", cj, rj)
	}

	// Watchlist hits: same set under the router's deterministic order.
	chits, err := rt.WatchlistHits()
	if err != nil {
		t.Fatal(err)
	}
	rhits, err := refClient.WatchlistHits()
	if err != nil {
		t.Fatal(err)
	}
	sortHits(rhits.Hits)
	if cj, rj := mustJSON(t, chits.Hits), mustJSON(t, rhits.Hits); cj != rj {
		t.Fatalf("watchlist hits diverged:\ncluster: %s\nsingle:  %s", cj, rj)
	}

	// History routes to the owner shard and must match the single node.
	chist, err := rt.History(watched, server.HistoryQuery{})
	if err != nil {
		t.Fatal(err)
	}
	rhist, err := refClient.History(watched)
	if err != nil {
		t.Fatal(err)
	}
	if cj, rj := mustJSON(t, chist.History), mustJSON(t, rhist.History); cj != rj {
		t.Fatalf("history %q diverged:\ncluster: %s\nsingle:  %s", watched, cj, rj)
	}
}

// TestClusterDegradation checks partial-result behavior: with one of
// two shards down, reads still answer from the survivor and report
// shards_ok=1/2 instead of failing.
func TestClusterDegradation(t *testing.T) {
	gcfg := datagen.DefaultEnterpriseConfig(23)
	gcfg.LocalHosts = 12
	gcfg.ExternalHosts = 150
	gcfg.Windows = 2
	gcfg.MultiusageIndividuals = 1
	data, err := datagen.GenerateEnterprise(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	baseCfg := func() server.Config {
		return server.Config{Stream: testStreamConfig(gcfg), StoreCapacity: 8}
	}
	srvA, tsA := newTestNode(t, baseCfg())
	srvB, tsB := newTestNode(t, baseCfg())
	rt, err := NewRouter(Config{
		Shards:     [][]string{{tsA.URL}, {tsB.URL}},
		Timeout:    10 * time.Second,
		MaxRetries: -1, // a dead shard should degrade fast, not backoff
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rt.Ingest("deg-1", data.Records); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*server.Server{srvA, srvB} {
		if _, err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// Find a label shard 0 owns, then take shard 1 down.
	var survivorLabel string
	for _, rec := range data.Records {
		if rt.Ring().Shard(rec.Src) == 0 {
			survivorLabel = rec.Src
			break
		}
	}
	if survivorLabel == "" {
		t.Fatal("no label owned by shard 0")
	}
	tsB.Close()

	sres, err := rt.Search(server.SearchRequest{Label: survivorLabel, K: 5, MaxDist: 0.99})
	if err != nil {
		t.Fatalf("degraded search should still answer: %v", err)
	}
	if sres.ShardsOK != 1 || sres.ShardsTotal != 2 {
		t.Fatalf("degraded search reported %d/%d shards, want 1/2", sres.ShardsOK, sres.ShardsTotal)
	}
	ares, err := rt.Anomalies("", 2.0)
	if err != nil {
		t.Fatalf("degraded anomalies should still answer: %v", err)
	}
	if ares.ShardsOK != 1 || ares.ShardsTotal != 2 {
		t.Fatalf("degraded anomalies reported %d/%d shards, want 1/2", ares.ShardsOK, ares.ShardsTotal)
	}
	hres, err := rt.WatchlistHits()
	if err != nil {
		t.Fatalf("degraded watchlist hits should still answer: %v", err)
	}
	if hres.ShardsOK != 1 || hres.ShardsTotal != 2 {
		t.Fatalf("degraded hits reported %d/%d shards, want 1/2", hres.ShardsOK, hres.ShardsTotal)
	}

	// The router's own surface reflects the degradation: /readyz goes
	// 503 with the dead shard named, and the partial counter moves.
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	resp, err := http.Get(rts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("readyz with a dead shard = %d, want 503", resp.StatusCode)
	}
	var ready server.ReadyResponse
	if err := json.NewDecoder(resp.Body).Decode(&ready); err != nil {
		t.Fatal(err)
	}
	if ready.Ready || ready.Node == nil || ready.Node.Role != "router" {
		t.Fatalf("readyz body %+v, want not-ready with router identity", ready)
	}
	if got := rt.Registry().Snapshot()["partial_results"]; got == 0 {
		t.Fatal("partial_results counter did not move under degradation")
	}

	// Routed ingest with the owner of some records dead is a partial
	// failure: reported as an error with per-shard accounting, so the
	// client can retry the same batch ID for exactly-once completion.
	if _, err := rt.Ingest("deg-2", data.Records); err == nil {
		t.Fatal("ingest with a dead shard should report partial failure")
	}
}

// TestClusterNodeIdentity checks the identity satellite: shard servers
// report role/shard/ring-epoch in /readyz and as constant Prometheus
// labels.
func TestClusterNodeIdentity(t *testing.T) {
	gcfg := datagen.DefaultEnterpriseConfig(5)
	ring, err := NewRing(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	cfg := server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 4,
		Node:          &server.Identity{Role: "primary", Shard: 1, Shards: 2, RingEpoch: ring.Epoch()},
	}
	_, ts := newTestNode(t, cfg)
	c := server.NewClient(ts.URL)
	ready, err := c.Ready()
	if err != nil {
		t.Fatal(err)
	}
	if ready.Node == nil {
		t.Fatal("readyz has no node identity")
	}
	if ready.Node.Role != "primary" || ready.Node.Shard != 1 || ready.Node.Shards != 2 || ready.Node.RingEpoch != ring.Epoch() {
		t.Fatalf("readyz identity %+v", ready.Node)
	}
	prom, err := c.MetricsProm()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`role="primary"`, `shard="1"`, fmt.Sprintf(`ring_epoch="%d"`, ring.Epoch())} {
		if !containsStr(prom, want) {
			t.Fatalf("prom exposition missing %s", want)
		}
	}
}

func containsStr(haystack, needle string) bool {
	for i := 0; i+len(needle) <= len(haystack); i++ {
		if haystack[i:i+len(needle)] == needle {
			return true
		}
	}
	return false
}

// TestClusterFollowerCatchUp is the replication acceptance test: a
// follower that starts after the primary has already sealed WAL
// generations must replay them plus the live tail, serve search
// bit-identically to a reference holding the same records, and keep
// serving after the primary is killed.
func TestClusterFollowerCatchUp(t *testing.T) {
	gcfg := datagen.DefaultEnterpriseConfig(31)
	gcfg.LocalHosts = 12
	gcfg.ExternalHosts = 150
	gcfg.Windows = 3
	gcfg.MultiusageIndividuals = 1
	data, err := datagen.GenerateEnterprise(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	primarySrv, primaryTS := newTestNode(t, server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		SnapshotDir:   t.TempDir(),
		Replicate:     true,
		Node:          &server.Identity{Role: "primary"},
	})
	pc := server.NewClient(primaryTS.URL)
	refSrv, refTS := newTestNode(t, server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
	})
	refClient := server.NewClient(refTS.URL)

	ingestBoth := func(lo, hi int) int {
		t.Helper()
		accepted := 0
		const batchSize = 400
		for i := lo; i < hi; i += batchSize {
			end := min(i+batchSize, hi)
			res, err := pc.IngestBatch(fmt.Sprintf("rep-%06d", i), data.Records[i:end])
			if err != nil {
				t.Fatal(err)
			}
			accepted += res.Accepted
			if _, err := refClient.IngestBatch(fmt.Sprintf("rep-%06d", i), data.Records[i:end]); err != nil {
				t.Fatal(err)
			}
		}
		return accepted
	}

	// First half before the follower exists: window closes checkpoint
	// the primary, sealing WAL generations the follower must replay
	// from segment files rather than the live log.
	half := len(data.Records) / 2
	accepted := ingestBoth(0, half)

	f, err := NewFollower(FollowerConfig{
		Primary:       []string{primaryTS.URL},
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		Poll:          5 * time.Millisecond,
		ChunkBytes:    2048, // force many fetches per generation
		Node:          &server.Identity{Role: "follower"},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()

	accepted += ingestBoth(half, len(data.Records))

	// The primary must actually have rotated — otherwise this test is
	// not exercising sealed-segment catch-up at all.
	rs, err := pc.ReplicationStatus()
	if err != nil {
		t.Fatal(err)
	}
	if rs.Gen == 0 {
		t.Fatal("primary never rotated its WAL; test premise broken")
	}

	deadline := time.Now().Add(15 * time.Second)
	for {
		st := f.Stats()
		if st.Fatal != "" {
			t.Fatalf("follower died: %s", st.Fatal)
		}
		if st.CaughtUp && st.AppliedRecords == accepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never caught up: %+v (want %d applied)", st, accepted)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill the primary. The follower keeps serving what it has.
	primaryTS.Close()
	primarySrv.Abort()

	fts := httptest.NewServer(f.Handler())
	defer fts.Close()
	fc := server.NewClient(fts.URL)

	ready, err := fc.Ready()
	if err != nil {
		t.Fatal(err)
	}
	if ready.Node == nil || ready.Node.Role != "follower" {
		t.Fatalf("follower readyz identity %+v, want role follower", ready.Node)
	}

	// Writes are refused: a replica that silently accepted flows would
	// fork from its primary.
	if _, err := fc.Ingest([]netflow.Record{data.Records[0]}); server.APIStatus(err) != http.StatusForbidden {
		t.Fatalf("follower ingest error %v, want HTTP 403", err)
	}

	// Close the final partial window on both and compare every label's
	// search and history bitwise.
	if _, err := f.Server().Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := refSrv.Flush(); err != nil {
		t.Fatal(err)
	}
	seen := map[string]bool{}
	compared := 0
	for _, rec := range data.Records {
		if seen[rec.Src] {
			continue
		}
		seen[rec.Src] = true
		req := server.SearchRequest{Label: rec.Src, K: 10, MaxDist: 0.95}
		fres, ferr := fc.Search(req)
		rres, rerr := refClient.Search(req)
		if (ferr != nil) != (rerr != nil) {
			t.Fatalf("search %q: follower err %v, reference err %v", rec.Src, ferr, rerr)
		}
		if ferr != nil {
			continue
		}
		if fj, rj := mustJSON(t, fres.Hits), mustJSON(t, rres.Hits); fj != rj {
			t.Fatalf("follower search %q diverged:\nfollower:  %s\nreference: %s", rec.Src, fj, rj)
		}
		compared++
	}
	if compared < 5 {
		t.Fatalf("only %d labels compared on the follower", compared)
	}
}

// TestClusterFailoverPromotion is the fault-tolerance acceptance test:
// a replicated shard's primary is killed mid-run; reads must keep
// answering through its follower without a shards_ok drop (staleness
// surfaced), auto-promotion must restore writes, and after the second
// half of the traffic lands through the promoted node every query must
// stay bit-identical to a single reference node over the union —
// including watch entries added before the kill.
func TestClusterFailoverPromotion(t *testing.T) {
	gcfg := datagen.DefaultEnterpriseConfig(41)
	gcfg.LocalHosts = 12
	gcfg.ExternalHosts = 150
	gcfg.Windows = 3
	gcfg.MultiusageIndividuals = 1
	data, err := datagen.GenerateEnterprise(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	watchDist := server.Float64(0.9)

	// Shard 0 replicates to a follower; shard 1 stays a plain primary.
	srvA, tsA := newTestNode(t, server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		WatchMaxDist:  watchDist,
		SnapshotDir:   t.TempDir(),
		Replicate:     true,
		Node:          &server.Identity{Role: "primary", Shard: 0, Shards: 2},
	})
	srvB, tsB := newTestNode(t, server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		WatchMaxDist:  watchDist,
	})
	refSrv, refTS := newTestNode(t, server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		WatchMaxDist:  watchDist,
	})
	refClient := server.NewClient(refTS.URL)

	f, err := NewFollower(FollowerConfig{
		Primary:       []string{tsA.URL},
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		WatchMaxDist:  watchDist,
		Poll:          5 * time.Millisecond,
		ChunkBytes:    2048,
		PromoteDir:    t.TempDir(),
		Node:          &server.Identity{Role: "follower", Shard: 0, Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()
	fts := httptest.NewServer(f.FollowerHandler())
	defer fts.Close()

	rt, err := NewRouter(Config{
		Shards:    [][]string{{tsA.URL}, {tsB.URL}},
		Followers: [][]string{{fts.URL}, nil},
		Health: &HealthConfig{
			Interval:      time.Hour, // never fires: the test drives ProbeOnce
			FailThreshold: 3,
			Cooldown:      time.Millisecond,
			AutoPromote:   time.Millisecond,
			Timeout:       5 * time.Second,
		},
		Timeout:    30 * time.Second,
		MaxRetries: -1, // fail fast against the killed primary
	})
	if err != nil {
		t.Fatal(err)
	}

	ingestBoth := func(lo, hi int) {
		t.Helper()
		const batchSize = 400
		for i := lo; i < hi; i += batchSize {
			end := min(i+batchSize, hi)
			id := fmt.Sprintf("fo-%06d", i)
			cres, err := rt.Ingest(id, data.Records[i:end])
			if err != nil {
				t.Fatalf("routed ingest %s: %v", id, err)
			}
			rres, err := refClient.IngestBatch(id, data.Records[i:end])
			if err != nil {
				t.Fatalf("reference ingest %s: %v", id, err)
			}
			if cres.Accepted != rres.Accepted || cres.Dropped != rres.Dropped || cres.Rejected != rres.Rejected {
				t.Fatalf("batch %s accounting diverged: cluster %+v, single %+v", id, cres.IngestResult, rres)
			}
		}
	}

	// First half of the traffic, plus a watch entry, before the fault.
	half := len(data.Records) / 2
	ingestBoth(0, half)
	pairs := data.Truth.MultiusageSets()
	if len(pairs) == 0 {
		t.Fatal("workload has no multiusage ground truth")
	}
	watched := pairs[0][0]
	if _, err := rt.WatchlistAdd(server.WatchlistAddRequest{Individual: "case-0", Label: watched}); err != nil {
		t.Fatalf("cluster watchlist add: %v", err)
	}
	if _, err := refClient.WatchlistAdd(server.WatchlistAddRequest{Individual: "case-0", Label: watched}); err != nil {
		t.Fatalf("reference watchlist add: %v", err)
	}

	// Barrier: the follower must hold everything the primary durably
	// logged before the kill, or the fault would (correctly) lose data.
	pcA := server.NewClient(tsA.URL)
	rs, err := pcA.ReplicationStatus()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := f.Stats()
		if st.Fatal != "" {
			t.Fatalf("follower died: %s", st.Fatal)
		}
		if st.Gen > rs.Gen || (st.Gen == rs.Gen && st.Offset >= rs.DurableSize) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached primary cursor (%d,%d): %+v", rs.Gen, rs.DurableSize, st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill shard 0's primary and let the prober converge: FailThreshold
	// rounds walk it to Down, the next round auto-promotes.
	tsA.Close()
	srvA.Abort()
	p := rt.Prober()
	for i := 0; i < 3; i++ {
		p.ProbeOnce()
	}
	if tgt := p.target(0); !tgt.primaryDown {
		t.Fatalf("prober did not mark shard 0 primary down: %+v", tgt)
	}

	// Before promotion: reads fail over to the follower with no
	// shards_ok drop, and staleness is surfaced per shard.
	var ownedByZero string
	for _, rec := range data.Records {
		if rt.Ring().Shard(rec.Src) == 0 {
			ownedByZero = rec.Src
			break
		}
	}
	if ownedByZero == "" {
		t.Fatal("no label owned by shard 0")
	}
	sres, err := rt.Search(server.SearchRequest{Label: ownedByZero, K: 5, MaxDist: 0.99})
	if err != nil {
		t.Fatalf("failover search: %v", err)
	}
	if sres.ShardsOK != 2 {
		t.Fatalf("failover search answered %d/%d shards, want 2/2", sres.ShardsOK, sres.ShardsTotal)
	}
	if len(sres.StaleShards) != 1 || sres.StaleShards[0].Shard != 0 {
		t.Fatalf("failover search stale_shards = %+v, want shard 0", sres.StaleShards)
	}
	if got := rt.Registry().Snapshot()["failover_reads_total_0"]; got == 0 {
		t.Fatal("failover_reads_total did not move")
	}

	// Promotion: downSince is already past the 1ms grace, so one more
	// round issues it; the follower flips to read-write.
	time.Sleep(5 * time.Millisecond)
	p.ProbeOnce()
	if tgt := p.target(0); tgt.promoted < 0 {
		t.Fatalf("prober did not promote shard 0's follower: %+v", tgt)
	}
	st := f.Stats()
	if !st.Promoted {
		t.Fatalf("follower not promoted: %+v", st)
	}
	promoted := f.Server()
	if id := promoted.Identity(); id == nil || id.Role != "primary" || id.RingEpoch != 1 {
		t.Fatalf("promoted identity %+v, want primary at ring epoch 1", id)
	}

	// Exactly-once across the failover: re-sending a pre-kill batch ID
	// must be absorbed by the promoted node's replicated dedup set, with
	// the original accounting.
	re, err := rt.Ingest("fo-000000", data.Records[0:min(400, half)])
	if err != nil {
		t.Fatalf("replayed batch after promotion: %v", err)
	}
	if !re.Deduplicated {
		t.Fatal("promoted node did not deduplicate a pre-kill batch ID")
	}
	if re.ShardsOK != re.ShardsTotal {
		t.Fatalf("replayed batch landed on %d/%d shards", re.ShardsOK, re.ShardsTotal)
	}

	// Second half of the traffic lands through the promoted node.
	ingestBoth(half, len(data.Records))

	// Close final windows everywhere and compare the two worlds bitwise.
	for _, s := range []*server.Server{promoted, srvB, refSrv} {
		if _, err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}
	seen := map[string]bool{}
	compared := 0
	for _, rec := range data.Records {
		if seen[rec.Src] {
			continue
		}
		seen[rec.Src] = true
		req := server.SearchRequest{Label: rec.Src, K: 10, MaxDist: 0.95}
		cres, cerr := rt.Search(req)
		rres, rerr := refClient.Search(req)
		if (cerr != nil) != (rerr != nil) {
			t.Fatalf("search %q: cluster err %v, single err %v", rec.Src, cerr, rerr)
		}
		if cerr != nil {
			continue
		}
		if cj, rj := mustJSON(t, cres.Hits), mustJSON(t, rres.Hits); cj != rj {
			t.Fatalf("post-promotion search %q diverged:\ncluster: %s\nsingle:  %s", rec.Src, cj, rj)
		}
		compared++
	}
	if compared < 10 {
		t.Fatalf("only %d labels compared post-promotion", compared)
	}

	// The watch entry added before the kill survived the failover: hit
	// logs merge bit-identically to the reference.
	chits, err := rt.WatchlistHits()
	if err != nil {
		t.Fatal(err)
	}
	if chits.ShardsOK != chits.ShardsTotal {
		t.Fatalf("watchlist hits answered %d/%d shards", chits.ShardsOK, chits.ShardsTotal)
	}
	rhits, err := refClient.WatchlistHits()
	if err != nil {
		t.Fatal(err)
	}
	sortHits(rhits.Hits)
	if cj, rj := mustJSON(t, chits.Hits), mustJSON(t, rhits.Hits); cj != rj {
		t.Fatalf("post-promotion watchlist hits diverged:\ncluster: %s\nsingle:  %s", cj, rj)
	}

	// Anomalies over the union stay bit-identical too.
	cano, err := rt.Anomalies("", 2.0)
	if err != nil {
		t.Fatal(err)
	}
	rano, err := refClient.Anomalies(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if cano.Mean != rano.Mean || cano.StdDev != rano.StdDev {
		t.Fatalf("post-promotion anomaly statistics diverged: cluster (%v,%v), single (%v,%v)",
			cano.Mean, cano.StdDev, rano.Mean, rano.StdDev)
	}
	if cj, rj := mustJSON(t, cano.Anomalies), mustJSON(t, rano.Anomalies); cj != rj {
		t.Fatalf("post-promotion anomaly sets diverged:\ncluster: %s\nsingle:  %s", cj, rj)
	}
}
