package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"graphsig/internal/netflow"
	"graphsig/internal/obs"
	"graphsig/internal/server"
)

// The router's HTTP surface mirrors sigserverd's v1 API so sigtool and
// other clients work unchanged against a cluster: same routes, same
// request bodies, responses extended with shards_ok/shards_total.

func (rt *Router) routes() {
	rt.mux.HandleFunc("POST /v1/flows", rt.handleFlows)
	rt.mux.HandleFunc("GET /v1/signatures/{label}", rt.handleHistory)
	rt.mux.HandleFunc("POST /v1/search", rt.handleSearch)
	rt.mux.HandleFunc("POST /v1/search/batch", rt.handleSearchBatch)
	rt.mux.HandleFunc("POST /v1/watchlist", rt.handleWatchlistAdd)
	rt.mux.HandleFunc("GET /v1/watchlist/hits", rt.handleWatchlistHits)
	rt.mux.HandleFunc("GET /v1/anomalies", rt.handleAnomalies)
	rt.mux.HandleFunc("GET /healthz", rt.handleHealth)
	rt.mux.HandleFunc("GET /readyz", rt.handleReady)
	rt.mux.HandleFunc("GET /v1/cluster/health", rt.handleClusterHealth)
	rt.mux.HandleFunc("GET /v1/traces", rt.handleTraces)
	rt.mux.HandleFunc("GET /v1/traces/{id}", rt.handleTraceByID)
	rt.mux.HandleFunc("GET /metrics", rt.handleMetrics)
}

// startTrace begins a router trace for an HTTP request, adopting an
// inbound X-Sig-Trace context when present, and advertises the minted
// context back to the caller in the response headers — so any routed
// call's trace is one response header away from `sigtool trace <id>`.
func (rt *Router) startTrace(w http.ResponseWriter, r *http.Request, name string) *obs.Trace {
	tr := rt.tracer.StartRemote(name, obs.ParseTraceContext(r.Header.Get(obs.TraceHeader)))
	w.Header().Set(obs.TraceHeader, tr.Context().String())
	return tr
}

// Handler returns the router's HTTP handler.
func (rt *Router) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rt.httpRequests.Add(1)
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		rt.mux.ServeHTTP(sw, r)
		if sw.status >= 400 {
			rt.httpErrors.Add(1)
		}
	})
}

type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

const maxBodyBytes = 64 << 20

func decodeJSON(w http.ResponseWriter, r *http.Request, v any) bool {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// errStatus maps a routed-call failure onto a response status,
// propagating the shard's own status when the failure was a single
// shard API error (e.g. 404 from the owner shard).
func errStatus(err error, fallback int) int {
	if st := server.APIStatus(err); st != 0 {
		return st
	}
	return fallback
}

func (rt *Router) handleFlows(w http.ResponseWriter, r *http.Request) {
	var req server.IngestRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	records := make([]netflow.Record, 0, len(req.Records))
	for i, rj := range req.Records {
		rec, err := rj.Record()
		if err != nil {
			writeError(w, http.StatusBadRequest, "record %d: %v", i, err)
			return
		}
		records = append(records, rec)
	}
	batchID := req.BatchID
	if batchID == "" {
		// Without a client ID the router still stamps one so its own
		// per-shard retries stay exactly-once; the client's retry of the
		// whole POST is then NOT deduplicated — same contract as posting
		// ID-less batches to a single node.
		batchID = server.NewBatchID()
	}
	tr := rt.startTrace(w, r, "route.ingest")
	defer tr.Finish()
	resp, err := rt.ingest(tr, batchID, records)
	if err != nil {
		// Partial ingest: some shards applied their partitions, others
		// did not. 502 tells the client to retry (with the same batch ID
		// for exactly-once); the body carries the partial accounting.
		writeJSON(w, http.StatusBadGateway, resp)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// historyQuery translates a routed history GET's from/to/limit params
// into the typed client query forwarded to the owner shard, so the
// bounds are enforced where the archive lives instead of shipping the
// whole history through the router.
func historyQuery(r *http.Request) (server.HistoryQuery, error) {
	var q server.HistoryQuery
	vals := r.URL.Query()
	if v := vals.Get("from"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return q, fmt.Errorf("bad from %q: want an integer", v)
		}
		q.From, q.HasFrom = n, true
	}
	if v := vals.Get("to"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil {
			return q, fmt.Errorf("bad to %q: want an integer", v)
		}
		q.To, q.HasTo = n, true
	}
	if v := vals.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 0 {
			return q, fmt.Errorf("bad limit %q: want an integer >= 0", v)
		}
		if n == 0 {
			n = -1 // explicit limit=0 means unbounded; see HistoryQuery
		}
		q.Limit = n
	}
	return q, nil
}

func (rt *Router) handleHistory(w http.ResponseWriter, r *http.Request) {
	q, err := historyQuery(r)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	tr := rt.startTrace(w, r, "route.history")
	defer tr.Finish()
	resp, err := rt.history(tr, r.PathValue("label"), q)
	if err != nil {
		writeError(w, errStatus(err, http.StatusBadGateway), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	var req server.SearchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if r.URL.Query().Get("debug") == "1" {
		req.Debug = true
	}
	tr := rt.startTrace(w, r, "route.search")
	defer tr.Finish()
	resp, err := rt.search(tr, req)
	if err != nil {
		writeError(w, errStatus(err, http.StatusBadGateway), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleSearchBatch(w http.ResponseWriter, r *http.Request) {
	var req server.BatchSearchRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if r.URL.Query().Get("debug") == "1" {
		req.Debug = true
	}
	tr := rt.startTrace(w, r, "route.search.batch")
	defer tr.Finish()
	resp, err := rt.searchBatch(tr, req)
	if err != nil {
		writeError(w, errStatus(err, http.StatusBadGateway), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleWatchlistAdd(w http.ResponseWriter, r *http.Request) {
	var req server.WatchlistAddRequest
	if !decodeJSON(w, r, &req) {
		return
	}
	if req.Individual == "" || req.Label == "" {
		writeError(w, http.StatusBadRequest, "watchlist add needs individual and label")
		return
	}
	tr := rt.startTrace(w, r, "route.watchlist.add")
	defer tr.Finish()
	resp, err := rt.watchlistAdd(tr, req)
	if err != nil {
		writeError(w, errStatus(err, http.StatusBadGateway), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleWatchlistHits(w http.ResponseWriter, r *http.Request) {
	tr := rt.startTrace(w, r, "route.watchlist.hits")
	defer tr.Finish()
	resp, err := rt.watchlistHits(tr)
	if err != nil {
		writeError(w, http.StatusBadGateway, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

func (rt *Router) handleAnomalies(w http.ResponseWriter, r *http.Request) {
	zCut := 0.0
	if zs := r.URL.Query().Get("z"); zs != "" {
		z, err := strconv.ParseFloat(zs, 64)
		if err != nil || z <= 0 {
			writeError(w, http.StatusBadRequest, "bad z parameter %q", zs)
			return
		}
		zCut = z
	}
	tr := rt.startTrace(w, r, "route.anomalies")
	defer tr.Finish()
	resp, err := rt.anomalies(tr, r.URL.Query().Get("distance"), zCut)
	if err != nil {
		writeError(w, errStatus(err, http.StatusBadGateway), "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// RouterHealth is the router's GET /healthz body.
type RouterHealth struct {
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	Shards        int     `json:"shards"`
}

func (rt *Router) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, RouterHealth{
		Status:        "ok",
		UptimeSeconds: time.Since(rt.start).Seconds(),
		Shards:        rt.ring.Shards(),
	})
}

// handleReady reports ready only when every shard is: a router in
// front of a half-down fleet still serves degraded reads, but load
// balancers should prefer a fully connected one. With a health prober
// configured, a shard whose writes answer through a promoted follower
// counts as ready, and one whose reads fail over to a follower counts
// as ready with a staleness note — failover is the feature working, not
// an outage.
func (rt *Router) handleReady(w http.ResponseWriter, r *http.Request) {
	// Readiness polls are load-balancer traffic; no trace is minted for
	// them (nil trace → no-op spans).
	results := scatter(rt, nil, "ready", rt.allShards(), func(s int, _ obs.TraceContext) (server.ReadyResponse, error) {
		return rt.writeClient(s).Ready()
	})
	resp := server.ReadyResponse{Ready: true, Node: rt.Identity()}
	for _, res := range results {
		if res.err == nil {
			continue
		}
		if rt.prober != nil {
			if t := rt.prober.target(res.shard); t.primaryDown && t.freshest >= 0 {
				resp.Reasons = append(resp.Reasons,
					fmt.Sprintf("shard %d: primary unavailable; reads served by follower at gen %d offset %d",
						res.shard, t.gen, t.off))
				continue
			}
		}
		resp.Ready = false
		resp.Reasons = append(resp.Reasons, fmt.Sprintf("shard %d: %v", res.shard, res.err))
	}
	status := http.StatusOK
	if !resp.Ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, resp)
}

// handleClusterHealth reports the prober's membership view; with no
// prober configured the body is {"enabled": false}.
func (rt *Router) handleClusterHealth(w http.ResponseWriter, r *http.Request) {
	if rt.prober == nil {
		writeJSON(w, http.StatusOK, ClusterHealthResponse{Enabled: false})
		return
	}
	writeJSON(w, http.StatusOK, rt.prober.snapshot())
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("federate") == "1" {
		rt.handleFederate(w, r)
		return
	}
	if r.URL.Query().Get("format") == "prom" {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = rt.registry.WritePrometheus(w)
		return
	}
	writeJSON(w, http.StatusOK, rt.registry.Snapshot())
}

// handleTraces serves the router's own recent-trace ring, mirroring the
// shard endpoint's shape so sigtool observe works against either.
func (rt *Router) handleTraces(w http.ResponseWriter, r *http.Request) {
	n := 0 // whole ring
	if ns := r.URL.Query().Get("n"); ns != "" {
		v, err := strconv.Atoi(ns)
		if err != nil || v < 0 {
			writeError(w, http.StatusBadRequest, "bad n parameter %q", ns)
			return
		}
		n = v
	}
	traces := rt.tracer.Recent(n)
	if traces == nil {
		traces = []obs.TraceSnapshot{}
	}
	writeJSON(w, http.StatusOK, server.TracesResponse{Total: rt.tracer.Total(), Traces: traces})
}
