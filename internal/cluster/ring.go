// Package cluster is the multi-process topology layer: a shard router
// that partitions ingest across N sigserverd shards by consistent
// hashing of source labels and merges their answers bit-identically to
// a single-node run, and a follower that tails a primary's WAL over
// HTTP to serve read traffic from an exact replica.
//
// The partitioning invariant everything rests on: the streaming
// schemes ("tt", "ut") derive each source's signature from that
// source's own flows only, so splitting a flow stream by source label
// changes which process computes each signature but never its value.
// Search, anomaly and watchlist answers are then per-label facts that
// a router can recombine, provided every ordering decision is made in
// label space — which PR 6 made true end to end (store tie-breaks,
// persistence accumulation order).
package cluster

import (
	"fmt"
	"sort"

	"graphsig/internal/graph"
)

// DefaultVNodes is the virtual-node count per shard. 128 points per
// shard keeps the expected per-shard load within a few percent of
// uniform for realistic shard counts while the ring stays small enough
// to rebuild on every boot.
const DefaultVNodes = 128

// Ring is a deterministic consistent-hash ring mapping source labels
// to shard indices. Two processes that build a ring with the same
// (shards, vnodes) agree on every assignment — determinism across
// processes is what lets the router, the shards and offline tools
// reason about placement independently. Adding or removing a shard
// moves only the keys that land on the changed shard's virtual nodes
// (≈1/n of the keyspace), never reshuffling the rest.
type Ring struct {
	shards int
	vnodes int
	points []ringPoint // sorted by hash, ascending
	epoch  uint64
}

type ringPoint struct {
	hash  uint64
	shard int
}

// NewRing builds the ring for a membership of n shards with v virtual
// nodes each (v <= 0 means DefaultVNodes).
func NewRing(n, v int) (*Ring, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one shard, got %d", n)
	}
	if v <= 0 {
		v = DefaultVNodes
	}
	r := &Ring{shards: n, vnodes: v, points: make([]ringPoint, 0, n*v)}
	for shard := 0; shard < n; shard++ {
		for i := 0; i < v; i++ {
			r.points = append(r.points, ringPoint{
				hash:  hash64(fmt.Sprintf("shard-%d#%d", shard, i)),
				shard: shard,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// A full 64-bit hash collision between virtual nodes is next to
		// impossible, but the ring must still be a deterministic total
		// order if it happens.
		return r.points[i].shard < r.points[j].shard
	})
	// The epoch fingerprints the membership configuration: identical
	// (shards, vnodes) → identical epoch, anything else → different.
	// Surfaced in /readyz so a half-rolled-out ring change is visible.
	r.epoch = hash64(fmt.Sprintf("ring:shards=%d:vnodes=%d", n, v))
	return r, nil
}

// hash64 is graph.HashLabel: the shared process-stable string hash.
// Sharing one function matters — the ring and the streaming sketches
// must agree with every other process about label identity.
func hash64(s string) uint64 { return graph.HashLabel(s) }

// Shard maps a source label to its owning shard: the first virtual
// node clockwise of the label's hash.
func (r *Ring) Shard(label string) int {
	h := hash64(label)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap past the highest point
	}
	return r.points[i].shard
}

// Shards reports the membership size.
func (r *Ring) Shards() int { return r.shards }

// VNodes reports the per-shard virtual node count.
func (r *Ring) VNodes() int { return r.vnodes }

// Epoch reports the membership fingerprint.
func (r *Ring) Epoch() uint64 { return r.epoch }
