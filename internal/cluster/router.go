package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"

	"graphsig/internal/apps"
	"graphsig/internal/netflow"
	"graphsig/internal/obs"
	"graphsig/internal/server"
	"graphsig/internal/store"
)

// DefaultScatterTimeout bounds each scatter-gather fan-out when
// Config.Timeout is zero.
const DefaultScatterTimeout = 5 * time.Second

// maxThrottleRetries bounds the router-side re-sends of a sub-batch
// whose shard keeps answering 429 after the client's own retries are
// exhausted. A 429 means the shard is alive and shedding load, so the
// router waits out the advertised Retry-After (via the client's
// saturating jittered backoff) instead of failing the sub-batch.
const maxThrottleRetries = 3

// Config parameterizes a Router.
type Config struct {
	// Shards is the per-shard seed address list: Shards[i] holds one or
	// more base URLs for shard i (failover rotates through them). The
	// ring size is len(Shards); its order is the shard numbering, so it
	// must be identical on every router.
	Shards [][]string
	// VNodes is the virtual-node count per shard (0 = DefaultVNodes).
	// Must match across routers for placement to agree.
	VNodes int
	// Timeout bounds each per-shard call during scatter-gather; shards
	// that miss it are reported as degraded, not failed requests.
	Timeout time.Duration
	// MaxRetries configures the per-shard clients (0 keeps the client
	// default; negative disables retries).
	MaxRetries int
	// Followers is the per-shard follower address list: Followers[i]
	// holds base URLs of processes tailing shard i's WAL. With a Health
	// prober configured, reads fail over to the freshest follower while
	// shard i's primary is down, and a promoted follower takes over the
	// slot entirely. May be nil or shorter than Shards.
	Followers [][]string
	// Health, when non-nil, enables the health prober that feeds the
	// failover view (and auto-promotion, if HealthConfig.AutoPromote is
	// set). Call Prober().Start() to begin wall-clock probing; tests
	// drive Prober().ProbeOnce() instead.
	Health *HealthConfig
	// Logger receives operational warnings (shard errors, degraded
	// fan-outs).
	Logger *slog.Logger
	// SlowOp is the span duration at or above which the router's tracer
	// logs a slow-operation warning (0 disables).
	SlowOp time.Duration
	// TraceCapacity bounds the router's recent-trace ring served at GET
	// /v1/traces (0 = the obs default of 64).
	TraceCapacity int
}

// Router scatters ingest across shards by ring placement and gathers
// shard answers into responses bit-identical to a single node holding
// the union — as long as every shard runs a per-source-local scheme
// and the same distance kernels (see the package comment).
type Router struct {
	ring      *Ring
	clients   []*server.Client
	followers [][]*server.Client // per shard, parallel to Config.Followers
	prober    *Prober            // nil without Config.Health
	timeout   time.Duration
	logger    *slog.Logger
	start     time.Time

	registry      *obs.Registry
	tracer        *obs.Tracer
	mux           *http.ServeMux
	routedFlows   *obs.CounterVec // records routed, by shard
	shardErrors   *obs.CounterVec // failed shard calls, by shard
	failoverReads *obs.CounterVec // reads served by a follower, by shard
	scatters      *obs.Counter    // scatter-gather fan-outs issued
	partials      *obs.Counter    // fan-outs answered with shards_ok < shards_total
	throttleWaits *obs.Counter    // routed ingest retries after shard 429s
	httpRequests  *obs.Counter
	httpErrors    *obs.Counter
	scrapeErrors  *obs.Counter // federation scrapes that failed
}

// NewRouter builds the router and its ring.
func NewRouter(cfg Config) (*Router, error) {
	if len(cfg.Shards) == 0 {
		return nil, fmt.Errorf("cluster: router needs at least one shard")
	}
	ring, err := NewRing(len(cfg.Shards), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	rt := &Router{
		ring:     ring,
		timeout:  cfg.Timeout,
		logger:   cfg.Logger,
		start:    time.Now(),
		registry: obs.NewRegistry(),
		tracer:   obs.NewTracer(cfg.TraceCapacity, cfg.SlowOp, cfg.Logger),
		mux:      http.NewServeMux(),
	}
	if rt.timeout <= 0 {
		rt.timeout = DefaultScatterTimeout
	}
	newClient := func(seeds []string) *server.Client {
		c := server.NewClient(seeds[0], seeds[1:]...)
		c.HTTP = &http.Client{Timeout: rt.timeout}
		if cfg.MaxRetries != 0 {
			c.MaxRetries = cfg.MaxRetries
		}
		return c
	}
	for i, seeds := range cfg.Shards {
		if len(seeds) == 0 {
			return nil, fmt.Errorf("cluster: shard %d has no seed addresses", i)
		}
		rt.clients = append(rt.clients, newClient(seeds))
		var fcs []*server.Client
		if i < len(cfg.Followers) {
			for _, fb := range cfg.Followers[i] {
				fcs = append(fcs, newClient([]string{fb}))
			}
		}
		rt.followers = append(rt.followers, fcs)
	}
	rt.registry.SetConstLabels(map[string]string{
		"role":       "router",
		"ring_epoch": strconv.FormatUint(ring.Epoch(), 10),
	})
	rt.routedFlows = rt.registry.CounterVec("routed_flows_total", "flow records routed, by shard", "shard")
	rt.shardErrors = rt.registry.CounterVec("shard_errors_total", "failed shard calls, by shard", "shard")
	rt.failoverReads = rt.registry.CounterVec("failover_reads_total", "reads served by a follower while the primary was down, by shard", "shard")
	rt.scatters = rt.registry.Counter("scatter_queries", "scatter-gather fan-outs issued")
	rt.partials = rt.registry.Counter("partial_results", "fan-outs answered with shards_ok < shards_total")
	rt.throttleWaits = rt.registry.Counter("ingest_throttle_retries", "routed ingest retries after shard 429 responses")
	rt.httpRequests = rt.registry.Counter("http_requests_total", "HTTP requests routed")
	rt.httpErrors = rt.registry.Counter("http_errors_total", "HTTP responses with status >= 400")
	rt.scrapeErrors = rt.registry.Counter("federate_scrape_errors", "node scrapes that failed during metrics federation")
	rt.registry.GaugeFunc("uptime_seconds", "seconds since router start",
		func() int64 { return int64(time.Since(rt.start).Seconds()) })
	if cfg.Health != nil {
		primaries := make([]string, len(cfg.Shards))
		for i, seeds := range cfg.Shards {
			primaries[i] = seeds[0]
		}
		rt.prober = newProber(*cfg.Health, primaries, cfg.Followers, rt.registry, rt.tracer, cfg.Logger)
	}
	rt.routes()
	return rt, nil
}

// Prober exposes the health prober (nil without Config.Health). The
// caller owns its lifecycle: Start for wall-clock probing, ProbeOnce
// for deterministic stepping, Stop on shutdown.
func (rt *Router) Prober() *Prober { return rt.prober }

// StaleShard reports that one shard's portion of a response was served
// by a follower whose replication cursor may trail the lost primary's
// final durable state.
type StaleShard struct {
	Shard int `json:"shard"`
	// Gen and Offset are the follower's replication cursor — everything
	// the primary durably logged before that point is reflected.
	Gen    int   `json:"gen"`
	Offset int64 `json:"offset"`
	// BehindSeconds is how long ago the cursor last advanced.
	BehindSeconds float64 `json:"behind_seconds,omitempty"`
}

// readClient picks the client answering reads for one shard: the
// primary while it is not Down, a promoted follower from the moment the
// prober observes one, otherwise the freshest serving follower — with
// the staleness it implies — and, with nothing better, the primary
// anyway so the caller gets a real error instead of a silent gap.
func (rt *Router) readClient(s int) (*server.Client, *StaleShard) {
	if rt.prober == nil {
		return rt.clients[s], nil
	}
	t := rt.prober.target(s)
	if t.promoted >= 0 {
		return rt.followers[s][t.promoted], nil
	}
	if !t.primaryDown {
		return rt.clients[s], nil
	}
	if t.freshest >= 0 {
		rt.failoverReads.With(strconv.Itoa(s)).Add(1)
		return rt.followers[s][t.freshest],
			&StaleShard{Shard: s, Gen: t.gen, Offset: t.off, BehindSeconds: t.behindSec}
	}
	return rt.clients[s], nil
}

// writeClient picks the client taking writes for one shard: the
// promoted follower once one exists — even if the old primary
// resurfaces, since the promoted node owns the bumped ring epoch and
// the stale primary must not take writes — otherwise the primary.
func (rt *Router) writeClient(s int) *server.Client {
	if rt.prober == nil {
		return rt.clients[s]
	}
	if t := rt.prober.target(s); t.promoted >= 0 {
		return rt.followers[s][t.promoted]
	}
	return rt.clients[s]
}

// readClients resolves every shard's read client up front (routing
// decisions happen before the fan-out, not inside its goroutines) and
// returns the staleness the selection implies — nil when every shard is
// answered authoritatively, so the response field serializes away.
func (rt *Router) readClients() ([]*server.Client, []StaleShard) {
	clients := make([]*server.Client, rt.ring.Shards())
	var stale []StaleShard
	for s := range clients {
		c, st := rt.readClient(s)
		clients[s] = c
		if st != nil {
			stale = append(stale, *st)
		}
	}
	return clients, stale
}

// Ring exposes the router's placement ring.
func (rt *Router) Ring() *Ring { return rt.ring }

// Registry exposes the router's metric registry.
func (rt *Router) Registry() *obs.Registry { return rt.registry }

// Tracer exposes the router's request tracer.
func (rt *Router) Tracer() *obs.Tracer { return rt.tracer }

// Identity describes the router in /readyz.
func (rt *Router) Identity() *server.Identity {
	return &server.Identity{Role: "router", Shards: rt.ring.Shards(), RingEpoch: rt.ring.Epoch()}
}

func (rt *Router) logf(format string, args ...any) {
	if rt.logger != nil {
		rt.logger.Warn(fmt.Sprintf(format, args...))
	}
}

// shardResult carries one shard's answer through a scatter.
type shardResult[T any] struct {
	shard  int
	val    T
	err    error
	micros int64 // wall time of this shard's call, for ?debug=1
}

// errScatterTimeout marks a shard that missed the fan-out deadline.
var errScatterTimeout = fmt.Errorf("cluster: shard missed the scatter deadline")

// scatter fans fn out to the given shards concurrently and collects
// answers until the deadline. Shards that miss it are reported with
// errScatterTimeout; their goroutines finish in the background (the
// per-shard HTTP timeout bounds the leak) and their late answers are
// discarded.
//
// Each shard call runs under its own span of tr ("<op>.shard<N>") and
// receives that span's trace context, which the caller forwards via
// Client.Traced so the shard's local trace records as a child of this
// fan-out. A shard that answers after the trace finished still closes
// its span; the append lands on an already-archived trace and is
// simply dropped with it.
func scatter[T any](rt *Router, tr *obs.Trace, op string, shards []int, fn func(shard int, tc obs.TraceContext) (T, error)) []shardResult[T] {
	rt.scatters.Add(1)
	ch := make(chan shardResult[T], len(shards))
	for _, s := range shards {
		go func(s int) {
			end, tc := tr.SpanWith(fmt.Sprintf("%s.shard%d", op, s))
			begin := time.Now()
			v, err := fn(s, tc)
			end()
			ch <- shardResult[T]{shard: s, val: v, err: err, micros: time.Since(begin).Microseconds()}
		}(s)
	}
	out := make([]shardResult[T], 0, len(shards))
	byShard := make(map[int]shardResult[T], len(shards))
	timer := time.NewTimer(rt.timeout)
	defer timer.Stop()
collect:
	for range shards {
		select {
		case r := <-ch:
			byShard[r.shard] = r
		case <-timer.C:
			break collect
		}
	}
	for _, s := range shards {
		r, ok := byShard[s]
		if !ok {
			r = shardResult[T]{shard: s, err: errScatterTimeout}
		}
		if r.err != nil {
			rt.shardErrors.With(strconv.Itoa(s)).Add(1)
			rt.logf("sigrouter: shard %d: %v", s, r.err)
		}
		out = append(out, r)
	}
	return out
}

// allShards lists every shard index.
func (rt *Router) allShards() []int {
	out := make([]int, rt.ring.Shards())
	for i := range out {
		out[i] = i
	}
	return out
}

// IngestResponse is the routed POST /v1/flows body: the merged ingest
// result plus fan-out accounting.
type IngestResponse struct {
	server.IngestResult
	ShardsOK    int `json:"shards_ok"`
	ShardsTotal int `json:"shards_total"`
}

// Ingest partitions records by ring placement of their source label
// (preserving arrival order within each shard, so per-shard streams
// stay time-ordered) and sends each shard its partition as one batch.
//
// Exactly-once: each shard batch carries the ID "<batchID>/<shard>".
// The per-shard client retries transient failures under that same ID,
// and the shard's dedup set absorbs retries of an already-applied
// batch — including a retry of the whole routed call under the same
// parent ID, which re-derives the same sub-IDs. A caller that retries
// a partially failed routed ingest with the same parent ID therefore
// re-applies only the partitions that did not land.
func (rt *Router) Ingest(batchID string, records []netflow.Record) (IngestResponse, error) {
	tr := rt.tracer.Start("route.ingest")
	defer tr.Finish()
	return rt.ingest(tr, batchID, records)
}

func (rt *Router) ingest(tr *obs.Trace, batchID string, records []netflow.Record) (IngestResponse, error) {
	parts := make(map[int][]netflow.Record)
	for i := range records {
		s := rt.ring.Shard(records[i].Src)
		parts[s] = append(parts[s], records[i])
	}
	shards := make([]int, 0, len(parts))
	for s := range parts {
		shards = append(shards, s)
	}
	sort.Ints(shards)

	resp := IngestResponse{ShardsTotal: len(shards)}
	resp.Received = len(records)
	results := scatter(rt, tr, "ingest", shards, func(s int, tc obs.TraceContext) (server.IngestResult, error) {
		id := ""
		if batchID != "" {
			id = batchID + "/" + strconv.Itoa(s)
		}
		c := rt.writeClient(s).Traced(tc)
		res, err := c.IngestBatch(id, parts[s])
		for attempt := 0; attempt < maxThrottleRetries &&
			server.APIStatus(err) == http.StatusTooManyRequests; attempt++ {
			rt.throttleWaits.Add(1)
			time.Sleep(c.Backoff(attempt, server.RetryAfter(err)))
			res, err = c.IngestBatch(id, parts[s])
		}
		if err == nil {
			rt.routedFlows.With(strconv.Itoa(s)).Add(int64(len(parts[s])))
		}
		return res, err
	})
	var errs []string
	for _, r := range results {
		if r.err != nil {
			errs = append(errs, fmt.Sprintf("shard %d: %v", r.shard, r.err))
			continue
		}
		resp.ShardsOK++
		resp.Accepted += r.val.Accepted
		resp.Dropped += r.val.Dropped
		resp.Rejected += r.val.Rejected
		resp.WindowsClosed += r.val.WindowsClosed
		resp.Errors = append(resp.Errors, r.val.Errors...)
		resp.Deduplicated = resp.Deduplicated || r.val.Deduplicated
		if r.val.CurrentWindow > resp.CurrentWindow {
			resp.CurrentWindow = r.val.CurrentWindow
		}
	}
	if resp.ShardsOK < resp.ShardsTotal {
		rt.partials.Add(1)
		return resp, fmt.Errorf("cluster: ingest landed on %d/%d shards: %s",
			resp.ShardsOK, resp.ShardsTotal, strings.Join(errs, "; "))
	}
	return resp, nil
}

// SearchResponse is the routed POST /v1/search body.
type SearchResponse struct {
	Distance    string                 `json:"distance"`
	Hits        []server.SearchHitJSON `json:"hits"`
	ShardsOK    int                    `json:"shards_ok"`
	ShardsTotal int                    `json:"shards_total"`
	StaleShards []StaleShard           `json:"stale_shards,omitempty"`
	TraceID     string                 `json:"trace_id,omitempty"`
	Debug       []ShardDebugJSON       `json:"debug,omitempty"`
}

// ShardDebugJSON is one shard's per-query explain block, returned when
// the request sets debug (or ?debug=1): wall time of the routed call as
// seen from the router, plus the shard's own probe and prefilter
// counts.
type ShardDebugJSON struct {
	Shard            int    `json:"shard"`
	Micros           int64  `json:"micros"`
	Probes           int    `json:"probes"`
	PrefilterChecked int64  `json:"prefilter_checked"`
	PrefilterSkipped int64  `json:"prefilter_skipped"`
	Error            string `json:"error,omitempty"`
}

// shardDebug assembles the explain blocks for one scatter's results.
func shardDebug[T any](results []shardResult[T], dbg func(T) *server.SearchDebugJSON) []ShardDebugJSON {
	out := make([]ShardDebugJSON, 0, len(results))
	for _, r := range results {
		d := ShardDebugJSON{Shard: r.shard, Micros: r.micros}
		if r.err != nil {
			d.Error = r.err.Error()
		} else if sd := dbg(r.val); sd != nil {
			d.Probes = sd.Probes
			d.PrefilterChecked = sd.PrefilterChecked
			d.PrefilterSkipped = sd.PrefilterSkipped
		}
		out = append(out, d)
	}
	return out
}

// Search fans the query out to every shard and merges the per-shard
// top-k lists under the store's exact comparator (dist asc, window
// desc, label asc), truncating to k. Each shard returns its own top-k,
// and the global top-k of a union is a subset of the per-shard top-ks,
// so the merged list is bit-identical to a single node searching the
// union — with the cardinality-exact distances (jaccard and friends)
// unconditionally, and for order-sensitive float kernels up to ulp
// differences from summation order (see DESIGN.md §12).
//
// Label queries resolve the label's latest archived signature at its
// owner shard first, then scatter it as a signature query with the
// label excluded — exactly what SearchLabel does on a single node.
func (rt *Router) Search(req server.SearchRequest) (SearchResponse, error) {
	tr := rt.tracer.Start("route.search")
	defer tr.Finish()
	return rt.search(tr, req)
}

func (rt *Router) search(tr *obs.Trace, req server.SearchRequest) (SearchResponse, error) {
	if req.Label != "" && req.Signature != nil {
		return SearchResponse{}, fmt.Errorf("cluster: set either label or signature, not both")
	}
	if req.K <= 0 {
		req.K = store.DefaultTopK
	}
	if req.Label != "" {
		resolved, err := rt.resolveLabelQuery(tr, req)
		if err != nil {
			return SearchResponse{}, err
		}
		req = resolved
	}

	clients, stale := rt.readClients()
	results := scatter(rt, tr, "search", rt.allShards(), func(s int, tc obs.TraceContext) (server.SearchResponse, error) {
		return clients[s].Traced(tc).Search(req)
	})
	// Non-nil even when empty: the routed body must serialize exactly
	// like a single node's ("hits": [], never null).
	resp := SearchResponse{ShardsTotal: len(results), Hits: []server.SearchHitJSON{}, StaleShards: stale}
	if req.Debug {
		resp.TraceID = tr.ID()
		resp.Debug = shardDebug(results, func(v server.SearchResponse) *server.SearchDebugJSON { return v.Debug })
	}
	for _, r := range results {
		if r.err != nil {
			continue
		}
		resp.ShardsOK++
		resp.Distance = r.val.Distance
		resp.Hits = append(resp.Hits, r.val.Hits...)
	}
	if resp.ShardsOK == 0 {
		return resp, fmt.Errorf("cluster: search failed on all %d shards", resp.ShardsTotal)
	}
	if resp.ShardsOK < resp.ShardsTotal {
		rt.partials.Add(1)
	}
	sortSearchHits(resp.Hits)
	if len(resp.Hits) > req.K {
		resp.Hits = resp.Hits[:req.K]
	}
	return resp, nil
}

// resolveLabelQuery rewrites a label query into the equivalent
// signature query by fetching the label's latest archived signature
// from its owner shard (the one shard that stores it), excluding the
// label from the results — exactly what SearchLabel does on a single
// node.
func (rt *Router) resolveLabelQuery(tr *obs.Trace, req server.SearchRequest) (server.SearchRequest, error) {
	owner := rt.ring.Shard(req.Label)
	oc, _ := rt.readClient(owner)
	end, tc := tr.SpanWith(fmt.Sprintf("resolve.shard%d", owner))
	// Unbounded on purpose: the newest archived window can hold an empty
	// signature, so "latest non-empty" may live past any default limit.
	hist, err := oc.Traced(tc).HistoryRange(req.Label, server.HistoryQuery{Limit: -1})
	end()
	if err != nil {
		return req, fmt.Errorf("cluster: resolving label %q at shard %d: %w", req.Label, owner, err)
	}
	var latest *server.SignatureJSON
	for i := range hist.History {
		if len(hist.History[i].Signature.Nodes) > 0 {
			latest = &hist.History[i].Signature
		}
	}
	if latest == nil {
		return req, fmt.Errorf("cluster: label %q has no archived signature", req.Label)
	}
	req.Signature = latest
	req.ExcludeLabel = req.Label
	req.Label = ""
	return req, nil
}

// sortSearchHits orders merged shard hits under the store's exact
// comparator (dist asc, window desc, label asc), so the routed top-k
// cut reproduces a single node's.
func sortSearchHits(hits []server.SearchHitJSON) {
	sort.Slice(hits, func(i, j int) bool {
		a, b := hits[i], hits[j]
		if a.Dist != b.Dist {
			return a.Dist < b.Dist
		}
		if a.Window != b.Window {
			return a.Window > b.Window
		}
		return a.Label < b.Label
	})
}

// BatchSearchResponse is the routed POST /v1/search/batch body.
// Results[i] answers Queries[i].
type BatchSearchResponse struct {
	Distance    string                     `json:"distance"`
	Results     []server.BatchSearchResult `json:"results"`
	ShardsOK    int                        `json:"shards_ok"`
	ShardsTotal int                        `json:"shards_total"`
	StaleShards []StaleShard               `json:"stale_shards,omitempty"`
	TraceID     string                     `json:"trace_id,omitempty"`
	Debug       []ShardDebugJSON           `json:"debug,omitempty"`
}

// SearchBatch fans a whole query batch out to every shard in ONE
// scatter — each shard answers all slots against a single ring
// snapshot with one pooled kernel scratch — then merges every slot's
// per-shard top-k lists under the store comparator, exactly as Search
// does for a single query. Label slots resolve at their owner shard
// first; slots that fail to resolve carry their error without failing
// the batch or the fan-out.
func (rt *Router) SearchBatch(req server.BatchSearchRequest) (BatchSearchResponse, error) {
	tr := rt.tracer.Start("route.search.batch")
	defer tr.Finish()
	return rt.searchBatch(tr, req)
}

func (rt *Router) searchBatch(tr *obs.Trace, req server.BatchSearchRequest) (BatchSearchResponse, error) {
	if len(req.Queries) == 0 {
		return BatchSearchResponse{}, fmt.Errorf("cluster: batch search needs at least one query")
	}
	results := make([]server.BatchSearchResult, len(req.Queries))
	ks := make([]int, len(req.Queries))
	fan := server.BatchSearchRequest{Distance: req.Distance, Debug: req.Debug}
	slots := make([]int, 0, len(req.Queries))
	for i, q := range req.Queries {
		if q.Label != "" && q.Signature != nil {
			results[i].Error = "set either label or signature, not both"
			continue
		}
		if q.K <= 0 {
			q.K = store.DefaultTopK
		}
		ks[i] = q.K
		if q.Label != "" {
			resolved, err := rt.resolveLabelQuery(tr, q)
			if err != nil {
				results[i].Error = err.Error()
				continue
			}
			q = resolved
		}
		fan.Queries = append(fan.Queries, q)
		slots = append(slots, i)
	}

	clients, stale := rt.readClients()
	resp := BatchSearchResponse{Distance: req.Distance, Results: results,
		ShardsTotal: rt.ring.Shards(), StaleShards: stale}
	if len(fan.Queries) == 0 {
		// Every slot failed resolution; nothing to scatter.
		resp.ShardsOK = resp.ShardsTotal
		return resp, nil
	}
	answers := scatter(rt, tr, "search.batch", rt.allShards(), func(s int, tc obs.TraceContext) (server.BatchSearchResponse, error) {
		return clients[s].Traced(tc).SearchBatch(fan)
	})
	for _, r := range answers {
		if r.err != nil {
			continue
		}
		resp.ShardsOK++
		resp.Distance = r.val.Distance
	}
	if req.Debug {
		resp.TraceID = tr.ID()
		resp.Debug = shardDebug(answers, func(v server.BatchSearchResponse) *server.SearchDebugJSON { return v.Debug })
	}
	if resp.ShardsOK == 0 {
		return resp, fmt.Errorf("cluster: batch search failed on all %d shards", resp.ShardsTotal)
	}
	if resp.ShardsOK < resp.ShardsTotal {
		rt.partials.Add(1)
	}
	for k, slot := range slots {
		merged := []server.SearchHitJSON{}
		slotErr := ""
		for _, r := range answers {
			if r.err != nil || k >= len(r.val.Results) {
				continue
			}
			sr := r.val.Results[k]
			if sr.Error != "" {
				// Shard-side slot errors (a malformed signature, say) are
				// deterministic across shards: every shard reports the same
				// one, so keeping the last seen loses nothing.
				slotErr = sr.Error
				continue
			}
			merged = append(merged, sr.Hits...)
		}
		if slotErr != "" && len(merged) == 0 {
			results[slot].Error = slotErr
			continue
		}
		sortSearchHits(merged)
		if len(merged) > ks[slot] {
			merged = merged[:ks[slot]]
		}
		results[slot].Hits = merged
	}
	return resp, nil
}

// AnomaliesResponse is the routed GET /v1/anomalies body.
type AnomaliesResponse struct {
	FromWindow  int                  `json:"from_window"`
	ToWindow    int                  `json:"to_window"`
	Mean        float64              `json:"mean_persistence"`
	StdDev      float64              `json:"stddev_persistence"`
	Anomalies   []server.AnomalyJSON `json:"anomalies"`
	ShardsOK    int                  `json:"shards_ok"`
	ShardsTotal int                  `json:"shards_total"`
	StaleShards []StaleShard         `json:"stale_shards,omitempty"`
}

// Anomalies fetches every shard's label-keyed persistence pairs,
// merges them (shards hold disjoint label sets), and runs the same
// label-ordered detection a single node runs — so the population
// mean/stddev and the flagged set are bit-identical to a single node
// holding the union. Shards reporting a different window pair than the
// newest one seen (a lagging shard mid-window-close) are counted as
// degraded rather than polluting the population.
func (rt *Router) Anomalies(distance string, zCut float64) (AnomaliesResponse, error) {
	tr := rt.tracer.Start("route.anomalies")
	defer tr.Finish()
	return rt.anomalies(tr, distance, zCut)
}

func (rt *Router) anomalies(tr *obs.Trace, distance string, zCut float64) (AnomaliesResponse, error) {
	if zCut <= 0 {
		zCut = 2.0
	}
	clients, stale := rt.readClients()
	results := scatter(rt, tr, "persistence", rt.allShards(), func(s int, tc obs.TraceContext) (server.PersistenceResponse, error) {
		return clients[s].Traced(tc).Persistence(distance)
	})
	resp := AnomaliesResponse{ShardsTotal: len(results), StaleShards: stale}
	// Reference window pair: the newest ToWindow any shard reports.
	ref := -1
	for _, r := range results {
		if r.err == nil && r.val.ToWindow > ref {
			ref = r.val.ToWindow
			resp.FromWindow, resp.ToWindow = r.val.FromWindow, r.val.ToWindow
		}
	}
	if ref == -1 {
		return resp, fmt.Errorf("cluster: anomalies failed on all %d shards", resp.ShardsTotal)
	}
	var pairs []apps.PersistencePair
	for _, r := range results {
		if r.err != nil {
			continue
		}
		if r.val.FromWindow != resp.FromWindow || r.val.ToWindow != resp.ToWindow {
			rt.logf("sigrouter: shard %d reports window pair (%d,%d), want (%d,%d); treating as degraded",
				r.shard, r.val.FromWindow, r.val.ToWindow, resp.FromWindow, resp.ToWindow)
			rt.shardErrors.With(strconv.Itoa(r.shard)).Add(1)
			continue
		}
		resp.ShardsOK++
		for _, p := range r.val.Pairs {
			pairs = append(pairs, apps.PersistencePair{Label: p.Label, Persistence: p.Persistence})
		}
	}
	if resp.ShardsOK < resp.ShardsTotal {
		rt.partials.Add(1)
	}
	anomalies, summary, err := apps.DetectAnomaliesByLabel(pairs, zCut)
	if err != nil {
		return resp, fmt.Errorf("cluster: %w", err)
	}
	resp.Mean, resp.StdDev = summary.Mean, summary.StdDev
	for _, a := range anomalies {
		resp.Anomalies = append(resp.Anomalies, server.AnomalyJSON{
			Label: a.Label, Persistence: a.Persistence, ZScore: a.ZScore,
		})
	}
	return resp, nil
}

// WatchlistHitsResponse is the routed GET /v1/watchlist/hits body.
type WatchlistHitsResponse struct {
	Hits        []server.WatchHitJSON `json:"hits"`
	ShardsOK    int                   `json:"shards_ok"`
	ShardsTotal int                   `json:"shards_total"`
	StaleShards []StaleShard          `json:"stale_shards,omitempty"`
}

// WatchlistHits merges every shard's hit log under a deterministic
// order (window, label, individual, archived window).
func (rt *Router) WatchlistHits() (WatchlistHitsResponse, error) {
	tr := rt.tracer.Start("route.watchlist.hits")
	defer tr.Finish()
	return rt.watchlistHits(tr)
}

func (rt *Router) watchlistHits(tr *obs.Trace) (WatchlistHitsResponse, error) {
	clients, stale := rt.readClients()
	results := scatter(rt, tr, "watchlist.hits", rt.allShards(), func(s int, tc obs.TraceContext) (server.WatchlistHitsResponse, error) {
		return clients[s].Traced(tc).WatchlistHits()
	})
	resp := WatchlistHitsResponse{ShardsTotal: len(results), Hits: []server.WatchHitJSON{}, StaleShards: stale}
	for _, r := range results {
		if r.err != nil {
			continue
		}
		resp.ShardsOK++
		resp.Hits = append(resp.Hits, r.val.Hits...)
	}
	if resp.ShardsOK == 0 {
		return resp, fmt.Errorf("cluster: watchlist hits failed on all %d shards", resp.ShardsTotal)
	}
	if resp.ShardsOK < resp.ShardsTotal {
		rt.partials.Add(1)
	}
	sort.Slice(resp.Hits, func(i, j int) bool {
		a, b := resp.Hits[i], resp.Hits[j]
		if a.Window != b.Window {
			return a.Window < b.Window
		}
		if a.Label != b.Label {
			return a.Label < b.Label
		}
		if a.Individual != b.Individual {
			return a.Individual < b.Individual
		}
		return a.ArchivedWindow < b.ArchivedWindow
	})
	return resp, nil
}

// WatchlistAdd archives a label's signatures cluster-wide. Window-close
// screening is local to each shard — a shard only sees its own labels'
// new signatures — so every shard needs the full archive. The router
// reads the signatures from the label's owner (the one shard that
// stores them) and replays them onto every shard as explicit-signature
// adds; the union of per-shard hit logs then matches a single node's.
func (rt *Router) WatchlistAdd(req server.WatchlistAddRequest) (server.WatchlistAddResponse, error) {
	tr := rt.tracer.Start("route.watchlist.add")
	defer tr.Finish()
	return rt.watchlistAdd(tr, req)
}

func (rt *Router) watchlistAdd(tr *obs.Trace, req server.WatchlistAddRequest) (server.WatchlistAddResponse, error) {
	owner := rt.ring.Shard(req.Label)
	oc, _ := rt.readClient(owner)
	end, otc := tr.SpanWith(fmt.Sprintf("resolve.shard%d", owner))
	// Screening archives the label's whole history, so this owner read
	// is explicitly unbounded even when it reaches into cold segments.
	hist, err := oc.Traced(otc).HistoryRange(req.Label, server.HistoryQuery{Limit: -1})
	end()
	if err != nil {
		return server.WatchlistAddResponse{}, err
	}
	var entries []server.HistoryEntryJSON
	for _, e := range hist.History {
		if req.Window != nil && e.Window != *req.Window {
			continue
		}
		if len(e.Signature.Nodes) == 0 {
			continue
		}
		entries = append(entries, e)
	}
	if len(entries) == 0 {
		return server.WatchlistAddResponse{}, fmt.Errorf("cluster: label %q has no archivable signature", req.Label)
	}
	results := scatter(rt, tr, "watchlist.add", rt.allShards(), func(s int, tc obs.TraceContext) (server.WatchlistAddResponse, error) {
		var last server.WatchlistAddResponse
		c := rt.writeClient(s).Traced(tc)
		for _, e := range entries {
			window := e.Window
			var err error
			last, err = c.WatchlistAdd(server.WatchlistAddRequest{
				Individual: req.Individual,
				Window:     &window,
				Signature:  &e.Signature,
			})
			if err != nil {
				return server.WatchlistAddResponse{}, err
			}
		}
		return last, nil
	})
	resp := server.WatchlistAddResponse{Archived: len(entries)}
	for _, r := range results {
		if r.err != nil {
			// A shard that missed the add would silently under-report
			// hits from then on; archiving is a write, so fail loudly
			// instead of degrading.
			return server.WatchlistAddResponse{}, fmt.Errorf("cluster: watchlist add: %w", r.err)
		}
		if r.val.Total > resp.Total {
			resp.Total = r.val.Total
		}
	}
	return resp, nil
}

// History fetches the label's archived signatures from its owner,
// failing over to the owner shard's follower when its primary is down.
// The zero query applies the owner's default limit; see
// server.HistoryQuery for bounded or unbounded fetches.
func (rt *Router) History(label string, q server.HistoryQuery) (server.HistoryResponse, error) {
	tr := rt.tracer.Start("route.history")
	defer tr.Finish()
	return rt.history(tr, label, q)
}

func (rt *Router) history(tr *obs.Trace, label string, q server.HistoryQuery) (server.HistoryResponse, error) {
	owner := rt.ring.Shard(label)
	c, _ := rt.readClient(owner)
	end, tc := tr.SpanWith(fmt.Sprintf("history.shard%d", owner))
	defer end()
	return c.Traced(tc).HistoryRange(label, q)
}
