package cluster

import (
	"fmt"
	"log/slog"
	"net/http"
	"sync"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/netflow"
	"graphsig/internal/obs"
	"graphsig/internal/server"
	"graphsig/internal/stream"
	"graphsig/internal/wal"
)

// DefaultFollowPoll is the idle replication poll interval.
const DefaultFollowPoll = 500 * time.Millisecond

// FollowerConfig parameterizes a Follower.
type FollowerConfig struct {
	// Primary is the primary's seed address list (failover rotates).
	Primary []string
	// Stream must match the primary's pipeline configuration (scheme,
	// k, classifier, sketch sizing) — signatures are recomputed locally
	// from the shipped records, so a mismatched scheme silently yields
	// different signatures. Origin and WindowSize are learned from the
	// WAL's origin frames and may be left zero.
	Stream stream.Config
	// StoreCapacity / Distance / LSH / WatchMaxDist mirror server.Config
	// — watch screening runs on the replica too, so a mismatched
	// threshold silently yields a different hit log.
	StoreCapacity     int
	Distance          core.Distance
	LSHBands, LSHRows int
	LSHSeed           uint64
	WatchMaxDist      *float64
	// Poll is the idle polling interval (0 = DefaultFollowPoll).
	Poll time.Duration
	// ChunkBytes bounds each WAL fetch (0 = server default).
	ChunkBytes int
	// Node stamps the follower's identity into /readyz and metrics.
	Node *server.Identity
	// PromoteDir, when non-empty, is the durability home a Promote call
	// attaches to the replica (fresh WAL + snapshot). Empty promotes to
	// a memory-only primary.
	PromoteDir string
	// SegmentDir / SegmentRetain mirror server.Config: with a segment
	// dir the replica compacts ring evictions into cold segment files
	// built from the shipped WAL. The segment codec is deterministic, so
	// a follower configured like its primary produces bitwise-identical
	// segment files — deep history survives promotion.
	SegmentDir    string
	SegmentRetain int
	// Logger receives operational warnings.
	Logger *slog.Logger
}

// FollowerStats is a snapshot of replication progress.
type FollowerStats struct {
	// Gen and Offset are the cursor: the next byte to fetch.
	Gen    int
	Offset int64
	// AppliedRecords counts records ingested into the local pipeline.
	AppliedRecords int
	// CaughtUp is true when the last fetch reached the primary's live
	// durable tail.
	CaughtUp bool
	// Serving is true once the first origin frame arrived and the local
	// server exists.
	Serving bool
	// Promoted is true once Promote flipped the replica to read-write;
	// replication is permanently stopped at that point.
	Promoted bool
	// LastProgress is when the cursor last advanced (zero before the
	// first fetch) — the prober's seconds-behind source.
	LastProgress time.Time
	// LastErr is the most recent transient error ("" when the last
	// fetch succeeded); Fatal is set when replication stopped for good.
	LastErr string
	Fatal   string
}

// Follower tails a primary's WAL over HTTP and serves read traffic
// from the replica it builds. The primary ships raw durable log bytes;
// the follower reframes them with the recovery torn-tail rules and
// feeds each record through its own pipeline in primary-accepted
// order, so its windows, signatures and archive are byte-for-byte the
// primary's. The local server is built lazily from the first origin
// frame (which fixes window alignment); until then Handler answers
// 503.
//
// Failure model: transport errors and primary restarts are transient —
// the follower keeps serving whatever it has and retries. A pruned
// cursor (410), a bad frame, or an origin mismatch is fatal: the
// replica can no longer prove it equals the primary, so it stops
// applying (and keeps serving stale data, visible via Stats and
// /readyz).
type Follower struct {
	cfg    FollowerConfig
	client *server.Client

	mu      sync.Mutex
	srv     *server.Server
	gen     int
	off     int64
	pending []byte
	applied int
	caught  bool
	lastErr error
	fatal   error

	// watchApplied counts watch entries applied so far; watchSkip is
	// armed with that count at each generation boundary, because every
	// generation opens with a prologue re-logging the full watch set —
	// exactly the entries this follower has already applied when it
	// finished the previous generation. Skipping by count (not by
	// content) keeps genuine duplicate adds intact.
	watchApplied int
	watchSkip    int
	// preOrigin buffers watch/batch frames that precede the first origin
	// frame (possible in generation 0 before the primary's window
	// alignment is known); they apply right after the server is built.
	preOrigin    []wal.Frame
	promoted     bool
	lastProgress time.Time

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// NewFollower builds a follower; Start begins replication.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if len(cfg.Primary) == 0 {
		return nil, fmt.Errorf("cluster: follower needs a primary address")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = DefaultFollowPoll
	}
	f := &Follower{
		cfg:    cfg,
		client: server.NewClient(cfg.Primary[0], cfg.Primary[1:]...),
		off:    wal.HeaderLen,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	// Replication owns its retry cadence; client-level retries would
	// only add latency under the poll loop.
	f.client.MaxRetries = -1
	return f, nil
}

// Start launches the replication loop.
func (f *Follower) Start() {
	go f.run()
}

// Stop halts replication (the local server keeps serving) and waits
// for the loop to exit.
func (f *Follower) Stop() {
	f.stopOnce.Do(func() { close(f.stop) })
	<-f.done
}

// Server exposes the local replica server (nil until the first origin
// frame arrived).
func (f *Follower) Server() *server.Server {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.srv
}

// Stats snapshots replication progress.
func (f *Follower) Stats() FollowerStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	st := FollowerStats{
		Gen:            f.gen,
		Offset:         f.off,
		AppliedRecords: f.applied,
		CaughtUp:       f.caught,
		Serving:        f.srv != nil,
		Promoted:       f.promoted,
		LastProgress:   f.lastProgress,
	}
	if f.lastErr != nil {
		st.LastErr = f.lastErr.Error()
	}
	if f.fatal != nil {
		st.Fatal = f.fatal.Error()
	}
	return st
}

// Handler serves the replica's read API, answering 503 until the
// local server exists.
func (f *Follower) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		srv := f.Server()
		if srv == nil {
			writeError(w, http.StatusServiceUnavailable, "follower bootstrapping: no origin frame received yet")
			return
		}
		srv.Handler().ServeHTTP(w, r)
	})
}

func (f *Follower) logf(format string, args ...any) {
	if f.cfg.Logger != nil {
		f.cfg.Logger.Warn(fmt.Sprintf(format, args...))
	}
}

// run is the replication loop: fetch, apply, advance; sleep only when
// caught up.
func (f *Follower) run() {
	defer close(f.done)
	for {
		select {
		case <-f.stop:
			return
		default:
		}
		progressed, err := f.step()
		f.mu.Lock()
		f.lastErr = err
		fatal := f.fatal
		f.mu.Unlock()
		if fatal != nil {
			f.logf("sigfollower: replication stopped: %v", fatal)
			return
		}
		if progressed && err == nil {
			continue // drain the backlog without sleeping
		}
		select {
		case <-f.stop:
			return
		case <-time.After(f.cfg.Poll):
		}
	}
}

// step performs one fetch+apply round. It reports whether the cursor
// advanced (more bytes may be immediately available).
func (f *Follower) step() (bool, error) {
	f.mu.Lock()
	gen, off := f.gen, f.off
	srv := f.srv
	f.mu.Unlock()

	// Each poll that ships bytes records a trace on the replica's own
	// ring, and its context rides the fetch so the primary's
	// "replication.wal" segment stitches under it. The trace is finished
	// only when the cursor advances — idle polls must not flood the
	// bounded ring. No server yet (pre-origin) means no tracer; the nil
	// trace below is a no-op.
	var tr *obs.Trace
	if srv != nil {
		tr = srv.Tracer().Start("replication.poll")
	}
	endFetch := tr.Span("wal.fetch")
	chunk, err := f.client.Traced(tr.Context()).FetchWAL(gen, off, f.cfg.ChunkBytes)
	endFetch()
	if err != nil {
		switch server.APIStatus(err) {
		case http.StatusGone:
			// The primary pruned our generation: the missing bytes are
			// unrecoverable over this protocol.
			f.setFatal(fmt.Errorf("cursor pruned by primary (lagged past retention): %w", err))
		case http.StatusConflict:
			f.setFatal(fmt.Errorf("primary is not replicating: %w", err))
		}
		// 404 (generation not started) and transport errors are
		// transient: a restarting primary serves again shortly.
		return false, err
	}

	f.mu.Lock()
	defer f.mu.Unlock()
	progressed := false
	if len(chunk.Data) > 0 {
		endApply := tr.Span("wal.apply")
		f.pending = append(f.pending, chunk.Data...)
		f.off += int64(len(chunk.Data))
		frames, consumed, serr := wal.ScanFrames(f.pending)
		if serr != nil {
			f.fatal = fmt.Errorf("bad frame at gen %d offset %d: %w", f.gen, f.off-int64(len(f.pending)), serr)
			return false, f.fatal
		}
		f.pending = f.pending[consumed:]
		if err := f.applyLocked(frames); err != nil {
			f.fatal = err
			return false, err
		}
		endApply()
		progressed = true
	}
	f.caught = !chunk.Sealed && f.off >= chunk.Size
	if chunk.Sealed && f.off >= chunk.Size {
		// Generation complete. Durable logs end on frame boundaries, so
		// leftover pending bytes mean corruption, not a torn tail.
		if len(f.pending) > 0 {
			f.fatal = fmt.Errorf("sealed generation %d ended mid-frame (%d pending bytes)", f.gen, len(f.pending))
			return false, f.fatal
		}
		f.gen++
		f.off = wal.HeaderLen
		// The next generation opens by re-logging the full watch set;
		// arm the skip counter so those replays are not applied twice.
		f.watchSkip = f.watchApplied
		progressed = true
	}
	if progressed {
		f.lastProgress = time.Now()
		tr.Finish()
	}
	return progressed, nil
}

func (f *Follower) setFatal(err error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fatal == nil {
		f.fatal = err
	}
}

// applyLocked feeds decoded frames into the local replica, building
// the server on the first origin frame. Callers hold f.mu.
func (f *Follower) applyLocked(frames []wal.Frame) error {
	var batch []netflow.Record
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		res := f.srv.IngestRecords(batch)
		if res.Rejected > 0 {
			// The primary's pipeline accepted every logged record, and
			// ours is configured identically — a rejection means it is
			// not, and the replica is diverging.
			return fmt.Errorf("replica pipeline rejected %d shipped records (config mismatch?): %v", res.Rejected, res.Errors)
		}
		f.applied += len(batch)
		batch = batch[:0]
		return nil
	}
	for _, fr := range frames {
		switch fr.Kind {
		case wal.FrameOrigin:
			if f.srv == nil {
				if err := f.buildServerLocked(fr); err != nil {
					return err
				}
				continue
			}
			// Later generations re-record the same alignment; anything
			// else means the primary was rebuilt under our feet.
			if origin, ok := f.srv.PipelineOrigin(); ok && !origin.Equal(fr.Origin) {
				return fmt.Errorf("origin frame %v disagrees with established origin %v", fr.Origin, origin)
			}
		case wal.FrameRecord:
			if f.srv == nil {
				return fmt.Errorf("record frame before any origin frame")
			}
			batch = append(batch, fr.Record)
		case wal.FrameWatch:
			if f.watchSkip > 0 {
				f.watchSkip-- // generation-prologue replay of an applied entry
				continue
			}
			if f.srv == nil {
				f.preOrigin = append(f.preOrigin, fr)
				f.watchApplied++
				continue
			}
			// Watch entries order against records: an entry screens only
			// windows that close after it, so the pending record batch
			// must land first.
			if err := flush(); err != nil {
				return err
			}
			if err := f.srv.ApplyWatchEntry(fr.Watch); err != nil {
				return fmt.Errorf("replica rejected shipped watch entry for %q: %w", fr.Watch.Individual, err)
			}
			f.watchApplied++
		case wal.FrameBatch:
			if f.srv == nil {
				f.preOrigin = append(f.preOrigin, fr)
				continue
			}
			// Dedup markers must register after the records they cover.
			if err := flush(); err != nil {
				return err
			}
			f.srv.RegisterBatch(fr.Batch)
		}
	}
	return flush()
}

// buildServerLocked creates the read-only replica server once window
// alignment is known.
func (f *Follower) buildServerLocked(origin wal.Frame) error {
	scfg := f.cfg.Stream
	scfg.Origin = origin.Origin
	if origin.Window > 0 {
		if scfg.WindowSize > 0 && scfg.WindowSize != origin.Window {
			f.logf("sigfollower: configured window %v overridden by primary's %v", scfg.WindowSize, origin.Window)
		}
		scfg.WindowSize = origin.Window
	}
	srv, err := server.New(server.Config{
		Stream:        scfg,
		StoreCapacity: f.cfg.StoreCapacity,
		Distance:      f.cfg.Distance,
		LSHBands:      f.cfg.LSHBands,
		LSHRows:       f.cfg.LSHRows,
		LSHSeed:       f.cfg.LSHSeed,
		WatchMaxDist:  f.cfg.WatchMaxDist,
		DisableWAL:    true,
		ReadOnly:      true,
		SegmentDir:    f.cfg.SegmentDir,
		SegmentRetain: f.cfg.SegmentRetain,
		Node:          f.cfg.Node,
		Logger:        f.cfg.Logger,
	})
	if err != nil {
		return fmt.Errorf("building replica server: %w", err)
	}
	f.srv = srv
	// Apply mutations that were shipped before window alignment was
	// known (watch adds and batch markers preceding the first ingest).
	for _, fr := range f.preOrigin {
		switch fr.Kind {
		case wal.FrameWatch:
			if err := f.srv.ApplyWatchEntry(fr.Watch); err != nil {
				return fmt.Errorf("replica rejected buffered watch entry for %q: %w", fr.Watch.Individual, err)
			}
		case wal.FrameBatch:
			f.srv.RegisterBatch(fr.Batch)
		}
	}
	f.preOrigin = nil
	return nil
}

// Promote stops replication and flips the replica into a serving
// primary (see server.Promote): the accumulated state — archive, open
// window, watchlist, dedup set — is exactly what the primary had
// durably logged, so routed retries and watch screening carry over. The
// promoted node rejoins the ring under the same shard index with a
// bumped RingEpoch, and starts its own WAL lineage one generation past
// the replication cursor so (gen, offset) positions never collide with
// bytes the old primary shipped.
func (f *Follower) Promote() (*server.Server, error) {
	f.mu.Lock()
	if f.promoted {
		f.mu.Unlock()
		return nil, fmt.Errorf("cluster: follower already promoted")
	}
	if f.srv == nil {
		f.mu.Unlock()
		return nil, fmt.Errorf("cluster: follower has no replica yet (no origin frame received)")
	}
	f.mu.Unlock()

	// Stop outside the lock: the replication loop takes f.mu per step.
	f.Stop()

	f.mu.Lock()
	defer f.mu.Unlock()
	if f.promoted {
		return nil, fmt.Errorf("cluster: follower already promoted")
	}
	node := &server.Identity{Role: "primary"}
	if f.cfg.Node != nil {
		n := *f.cfg.Node
		n.Role = "primary"
		n.RingEpoch++
		node = &n
	}
	if err := f.srv.Promote(server.PromoteConfig{
		SnapshotDir: f.cfg.PromoteDir,
		WALGen:      f.gen + 1,
		Node:        node,
	}); err != nil {
		return nil, err
	}
	f.promoted = true
	f.caught = false
	return f.srv, nil
}
