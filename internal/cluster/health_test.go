package cluster

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"graphsig/internal/netflow"
	"graphsig/internal/server"
)

// testFlowRecords builds n minimal TCP records for routing tests that
// only care about transport behavior, not pipeline semantics.
func testFlowRecords(n int) []netflow.Record {
	origin := time.Date(2026, 8, 1, 0, 0, 0, 0, time.UTC)
	out := make([]netflow.Record, n)
	for i := range out {
		out[i] = netflow.Record{
			Src:      fmt.Sprintf("10.1.0.%d", i%9),
			Dst:      fmt.Sprintf("ext-%d.example", i%4),
			Start:    origin.Add(time.Duration(i) * time.Second),
			Duration: 100 * time.Millisecond,
			Sessions: 1,
			Bytes:    512,
			Packets:  4,
			Proto:    netflow.TCP,
		}
	}
	return out
}

// fakePrimary is a scriptable /readyz + /v1/replication/status endpoint
// for prober tests.
type fakePrimary struct {
	up      atomic.Bool
	gen     atomic.Int64
	durable atomic.Int64
}

func (fp *fakePrimary) serve(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		if !fp.up.Load() {
			http.Error(w, "down", http.StatusServiceUnavailable)
			return
		}
		_ = json.NewEncoder(w).Encode(server.ReadyResponse{Ready: true})
	})
	mux.HandleFunc("GET /v1/replication/status", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(server.ReplicationStatusResponse{
			Replicating: true,
			Gen:         int(fp.gen.Load()),
			DurableSize: fp.durable.Load(),
		})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// fakeFollower is a scriptable /v1/follower/status endpoint.
type fakeFollower struct {
	gen        atomic.Int64
	off        atomic.Int64
	progressed atomic.Bool
	promoted   atomic.Bool
	promotes   atomic.Int64
}

func (ff *fakeFollower) serve(t *testing.T) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/follower/status", func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(FollowerStatusResponse{
			Gen:        int(ff.gen.Load()),
			Offset:     ff.off.Load(),
			Progressed: ff.progressed.Load(),
			Serving:    true,
			Promoted:   ff.promoted.Load(),
		})
	})
	mux.HandleFunc("POST /v1/promote", func(w http.ResponseWriter, r *http.Request) {
		ff.promotes.Add(1)
		ff.promoted.Store(true)
		_ = json.NewEncoder(w).Encode(PromoteResponse{Promoted: true})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestProberStateMachine walks one primary through
// Healthy→Suspect→Down→Healthy with deterministic ProbeOnce rounds and
// checks the routing view and freshest-follower selection at each stop.
func TestProberStateMachine(t *testing.T) {
	fp := &fakePrimary{}
	fp.up.Store(true)
	fp.gen.Store(2)
	fp.durable.Store(9000)
	pts := fp.serve(t)

	lag, fresh := &fakeFollower{}, &fakeFollower{}
	lag.gen.Store(1)
	lag.off.Store(500)
	fresh.gen.Store(2)
	fresh.off.Store(8000)
	lts, fts := lag.serve(t), fresh.serve(t)

	rt, err := NewRouter(Config{
		Shards:    [][]string{{pts.URL}},
		Followers: [][]string{{lts.URL, fts.URL}},
		Health: &HealthConfig{
			Interval:      time.Hour,
			FailThreshold: 3,
			Cooldown:      time.Millisecond,
		},
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Prober()

	p.ProbeOnce()
	tgt := p.target(0)
	if tgt.primaryDown || tgt.promoted >= 0 {
		t.Fatalf("healthy view %+v", tgt)
	}
	if tgt.freshest != 1 || tgt.gen != 2 || tgt.off != 8000 {
		t.Fatalf("freshest selection %+v, want follower 1 at (2,8000)", tgt)
	}
	// Same-generation byte lag is published for the freshest follower.
	if got := rt.Registry().Snapshot()["replica_lag_bytes_0"]; got != 1000 {
		t.Fatalf("replica_lag_bytes = %d, want 1000", got)
	}

	// Two failures: Suspect, still routing to the primary.
	fp.up.Store(false)
	p.ProbeOnce()
	p.ProbeOnce()
	if tgt := p.target(0); tgt.primaryDown {
		t.Fatalf("suspect primary already marked down: %+v", tgt)
	}
	// Third consecutive failure crosses the threshold.
	p.ProbeOnce()
	if tgt := p.target(0); !tgt.primaryDown {
		t.Fatalf("primary not down after threshold: %+v", tgt)
	}
	snap := rt.Registry().Snapshot()
	if got := snap["probe_failures_total_s0_primary"]; got != 3 {
		t.Fatalf("probe_failures for primary = %d, want 3", got)
	}
	// Healthy→Suspect and Suspect→Down.
	if got := snap["health_transitions_total_s0_primary"]; got != 2 {
		t.Fatalf("transitions for primary = %d, want 2", got)
	}

	// One success walks straight back to Healthy.
	fp.up.Store(true)
	p.ProbeOnce()
	if tgt := p.target(0); tgt.primaryDown {
		t.Fatalf("recovered primary still down: %+v", tgt)
	}

	// The membership view renders on the router's debug route.
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()
	resp, err := http.Get(rts.URL + "/v1/cluster/health")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var ch ClusterHealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&ch); err != nil {
		t.Fatal(err)
	}
	if !ch.Enabled || len(ch.Endpoints) != 3 {
		t.Fatalf("cluster health %+v, want enabled with 3 endpoints", ch)
	}
	if ch.Endpoints[0].Endpoint != "s0/primary" || ch.Endpoints[0].State != "healthy" {
		t.Fatalf("primary endpoint %+v", ch.Endpoints[0])
	}
}

// TestProberAutoPromote: a primary down past the grace period gets its
// freshest serving follower promoted exactly once; further rounds see
// the promoted node and do not re-POST.
func TestProberAutoPromote(t *testing.T) {
	fp := &fakePrimary{} // never up
	pts := fp.serve(t)
	ff := &fakeFollower{}
	ff.gen.Store(1)
	ff.off.Store(100)
	fts := ff.serve(t)

	rt, err := NewRouter(Config{
		Shards:    [][]string{{pts.URL}},
		Followers: [][]string{{fts.URL}},
		Health: &HealthConfig{
			Interval:      time.Hour,
			FailThreshold: 2,
			Cooldown:      time.Millisecond,
			AutoPromote:   time.Millisecond,
		},
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Prober()
	p.ProbeOnce()
	p.ProbeOnce() // threshold reached: Down, downSince = now
	if ff.promotes.Load() != 0 {
		t.Fatal("promotion issued before the grace period")
	}
	time.Sleep(5 * time.Millisecond) // let the grace period elapse
	p.ProbeOnce()
	if got := ff.promotes.Load(); got != 1 {
		t.Fatalf("promotions POSTed = %d, want 1", got)
	}
	if tgt := p.target(0); tgt.promoted != 0 {
		t.Fatalf("prober view after promotion %+v, want promoted=0", tgt)
	}
	p.ProbeOnce()
	p.ProbeOnce()
	if got := ff.promotes.Load(); got != 1 {
		t.Fatalf("promotion re-POSTed: %d calls", got)
	}
	if got := rt.Registry().Snapshot()["promotions_total"]; got != 1 {
		t.Fatalf("promotions_total = %d, want 1", got)
	}
	// Reads and writes both route to the promoted follower now.
	if c, stale := rt.readClient(0); c != rt.followers[0][0] || stale != nil {
		t.Fatal("readClient does not prefer the promoted follower")
	}
	if c := rt.writeClient(0); c != rt.followers[0][0] {
		t.Fatal("writeClient does not prefer the promoted follower")
	}
}

// TestProberSkipsNeverProgressedFollower: a follower whose replication
// cursor has never advanced reports the same zeroed staleness shape as
// one that just advanced — and an operator start-gen misconfiguration
// can even make it report the highest generation. It must lose the
// freshest-target election to any sibling with real progress, and be
// chosen only when no progressed sibling exists.
func TestProberSkipsNeverProgressedFollower(t *testing.T) {
	fp := &fakePrimary{} // never up: reads fail over to followers
	pts := fp.serve(t)
	blank, replicated := &fakeFollower{}, &fakeFollower{}
	// The blank follower has never fetched a byte but was started with a
	// too-high generation; naive (gen, offset) ordering would elect it.
	blank.gen.Store(7)
	replicated.gen.Store(2)
	replicated.off.Store(4000)
	replicated.progressed.Store(true)
	bts, rts := blank.serve(t), replicated.serve(t)

	rt, err := NewRouter(Config{
		Shards:    [][]string{{pts.URL}},
		Followers: [][]string{{bts.URL, rts.URL}},
		Health: &HealthConfig{
			Interval:      time.Hour,
			FailThreshold: 1,
			Cooldown:      time.Millisecond,
		},
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	p := rt.Prober()
	p.ProbeOnce()
	tgt := p.target(0)
	if !tgt.primaryDown {
		t.Fatalf("primary not down: %+v", tgt)
	}
	if tgt.freshest != 1 || tgt.gen != 2 || tgt.off != 4000 {
		t.Fatalf("freshest = %+v, want the progressed follower 1 at (2,4000)", tgt)
	}

	// With no progressed sibling the never-progressed follower stays
	// eligible: an empty cluster's followers are all vacuously fresh.
	rt2, err := NewRouter(Config{
		Shards:    [][]string{{pts.URL}},
		Followers: [][]string{{bts.URL}},
		Health: &HealthConfig{
			Interval:      time.Hour,
			FailThreshold: 1,
			Cooldown:      time.Millisecond,
		},
		Timeout: 5 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	p2 := rt2.Prober()
	p2.ProbeOnce()
	if tgt := p2.target(0); tgt.freshest != 0 {
		t.Fatalf("lone never-progressed follower not eligible: %+v", tgt)
	}
}

// TestRouterIngestHonorsRetryAfter: a shard that sheds load with 429 +
// Retry-After must not fail the routed sub-batch — the router waits out
// the advertised pacing and re-sends.
func TestRouterIngestHonorsRetryAfter(t *testing.T) {
	var throttles atomic.Int64
	throttles.Store(2)
	var posts atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/v1/flows" {
			http.NotFound(w, r)
			return
		}
		posts.Add(1)
		if throttles.Add(-1) >= 0 {
			w.Header().Set("Retry-After", "0")
			w.Header().Set("Content-Type", "application/json")
			w.WriteHeader(http.StatusTooManyRequests)
			fmt.Fprint(w, `{"error":"throttled"}`)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprint(w, `{"received":1,"accepted":1}`)
	}))
	defer ts.Close()

	rt, err := NewRouter(Config{
		Shards:     [][]string{{ts.URL}},
		Timeout:    10 * time.Second,
		MaxRetries: -1, // isolate the router's own throttle loop
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := rt.Ingest("ra-1", testFlowRecords(1))
	if err != nil {
		t.Fatalf("throttled ingest failed: %v", err)
	}
	if res.Accepted != 1 || res.ShardsOK != 1 {
		t.Fatalf("ingest result %+v", res)
	}
	if got := posts.Load(); got != 3 {
		t.Fatalf("shard saw %d posts, want 3 (two 429s + success)", got)
	}
	if got := rt.Registry().Snapshot()["ingest_throttle_retries"]; got != 2 {
		t.Fatalf("ingest_throttle_retries = %d, want 2", got)
	}
}
