package cluster

import (
	"bytes"
	"net/http"
	"strings"
	"sync"

	"graphsig/internal/obs"
)

// Metrics federation: GET /metrics?federate=1 scrapes every node's
// Prometheus exposition (router included), relabels each sample with
// the node's cluster identity, and adds cluster-level aggregates —
// counters summed, histograms merged bucket-wise. Every node shares
// the same log-spaced bucket bounds, so the merge is exact: the
// federated histogram is bit-identical to one histogram having
// observed every node's samples (see obs.WriteFederated).
func (rt *Router) handleFederate(w http.ResponseWriter, r *http.Request) {
	var buf bytes.Buffer
	if err := rt.registry.WritePrometheus(&buf); err != nil {
		writeError(w, http.StatusInternalServerError, "rendering router metrics: %v", err)
		return
	}
	own, err := obs.ParseExposition(&buf)
	if err != nil {
		writeError(w, http.StatusInternalServerError, "parsing router metrics: %v", err)
		return
	}
	expositions := []obs.NodeExposition{{
		Labels:   []obs.Label{{Name: "instance", Value: "router"}},
		Families: own,
	}}

	// Scrape every node concurrently. MetricsProm fails over across a
	// node's seed addresses but not across nodes: a dead node is
	// reported, not silently folded into the aggregates.
	nodes := rt.nodeClients()
	texts := make([]string, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, nc := range nodes {
		wg.Add(1)
		go func(i int, nc nodeClient) {
			defer wg.Done()
			texts[i], errs[i] = nc.c.MetricsProm()
		}(i, nc)
	}
	wg.Wait()

	for i, nc := range nodes {
		if errs[i] != nil {
			rt.scrapeErrors.Add(1)
			rt.logf("sigrouter: federate: scraping %s: %v", nc.name, errs[i])
			continue
		}
		fams, err := obs.ParseExposition(strings.NewReader(texts[i]))
		if err != nil {
			rt.scrapeErrors.Add(1)
			rt.logf("sigrouter: federate: parsing %s exposition: %v", nc.name, err)
			continue
		}
		// Shard registries already stamp role/shard/ring_epoch const
		// labels; the injection only fills in what a sample lacks —
		// for these nodes, just the instance.
		expositions = append(expositions, obs.NodeExposition{
			Labels:   []obs.Label{{Name: "instance", Value: nc.name}},
			Families: fams,
		})
	}

	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_ = obs.WriteFederated(w, expositions)
}
