package cluster

import (
	"net/http"
	"time"

	"graphsig/internal/obs"
	"graphsig/internal/server"
)

// The follower's control surface. FollowerHandler wraps the replica's
// read API with two follower-specific endpoints:
//
//	GET  /v1/follower/status — replication cursor, lag and serving state
//	POST /v1/promote         — flip this replica into a serving primary
//
// Promotion is driven either by an operator (curl against a chosen
// follower) or by the router's health prober in auto-promote mode; in
// both cases the promoted node keeps its listener and address, so the
// router reaches it exactly where the follower was.

// FollowerStatusResponse is the GET /v1/follower/status body.
type FollowerStatusResponse struct {
	Gen            int   `json:"gen"`
	Offset         int64 `json:"offset"`
	AppliedRecords int   `json:"applied_records"`
	CaughtUp       bool  `json:"caught_up"`
	Serving        bool  `json:"serving"`
	Promoted       bool  `json:"promoted"`
	// Progressed is true once the replication cursor has advanced at
	// least once. It disambiguates BehindSeconds == 0: a follower that
	// has never fetched a byte reports 0 too, and must not be mistaken
	// for one that just advanced.
	Progressed bool `json:"progressed"`
	// BehindSeconds is how long ago the cursor last advanced — a coarse
	// staleness signal that works even when the primary is down and the
	// byte lag is unknowable. It is 0 when the follower has never
	// progressed; check Progressed before trusting it.
	BehindSeconds float64          `json:"behind_seconds"`
	LastErr       string           `json:"last_err,omitempty"`
	Fatal         string           `json:"fatal,omitempty"`
	Node          *server.Identity `json:"node,omitempty"`
}

// PromoteResponse is the POST /v1/promote body.
type PromoteResponse struct {
	Promoted bool             `json:"promoted"`
	WALGen   int              `json:"wal_gen"`
	Node     *server.Identity `json:"node,omitempty"`
}

// statusResponse snapshots the follower's stats in wire form.
func (f *Follower) statusResponse() FollowerStatusResponse {
	st := f.Stats()
	resp := FollowerStatusResponse{
		Gen:            st.Gen,
		Offset:         st.Offset,
		AppliedRecords: st.AppliedRecords,
		CaughtUp:       st.CaughtUp,
		Serving:        st.Serving,
		Promoted:       st.Promoted,
		LastErr:        st.LastErr,
		Fatal:          st.Fatal,
	}
	if !st.LastProgress.IsZero() {
		resp.Progressed = true
		resp.BehindSeconds = time.Since(st.LastProgress).Seconds()
	}
	if srv := f.Server(); srv != nil {
		resp.Node = srv.Identity()
	} else {
		resp.Node = f.cfg.Node
	}
	return resp
}

// FollowerHandler serves the replica's read API plus the follower
// control endpoints. Use it instead of Follower.Handler when the
// follower should be promotable over HTTP.
func (f *Follower) FollowerHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/follower/status", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, f.statusResponse())
	})
	mux.HandleFunc("POST /v1/promote", func(w http.ResponseWriter, r *http.Request) {
		srv, err := f.Promote()
		if err != nil {
			// An already-promoted follower makes a routed retry of the
			// promote call idempotent-ish: report the live state with 409
			// so the caller can tell "already done" from "cannot".
			writeError(w, http.StatusConflict, "%v", err)
			return
		}
		// When the prober drove this (X-Sig-Trace present), record the
		// promotion on the new primary's own ring under the prober's
		// trace ID, so the failover stitches into one event.
		if tc := obs.ParseTraceContext(r.Header.Get(obs.TraceHeader)); tc.Valid() {
			srv.Tracer().StartRemote("promote", tc).Finish()
		}
		writeJSON(w, http.StatusOK, PromoteResponse{
			Promoted: true,
			WALGen:   srv.WALGen(),
			Node:     srv.Identity(),
		})
	})
	mux.Handle("/", f.Handler())
	return mux
}
