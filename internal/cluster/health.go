package cluster

import (
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	mrand "math/rand"
	"net/http"
	"strconv"
	"sync"
	"time"

	"graphsig/internal/obs"
	"graphsig/internal/server"
)

// The health prober is the router's membership view. The static ring
// (NewRing) decides where keys live; the prober decides which process
// currently answers for each slot: the primary while it is healthy, the
// freshest follower when it is not, and a promoted follower from the
// moment a promotion is observed. Probes are deliberately dumb — GET
// /readyz on primaries, GET /v1/follower/status on followers, one
// attempt each — and all intelligence lives in the per-endpoint state
// machine: consecutive failures walk Healthy → Suspect → Down, one
// success walks straight back to Healthy, and Down endpoints are
// re-probed only every Cooldown so a dead node costs one connect
// timeout per cooldown instead of one per request.

// Prober defaults.
const (
	DefaultProbeInterval = 2 * time.Second
	DefaultFailThreshold = 3
	DefaultProbeCooldown = 5 * time.Second
)

// HealthConfig parameterizes the router's health prober.
type HealthConfig struct {
	// Interval between probe rounds (default DefaultProbeInterval),
	// jittered ±20% so a fleet of routers decorrelates.
	Interval time.Duration
	// FailThreshold is how many consecutive probe failures mark an
	// endpoint Down (default DefaultFailThreshold).
	FailThreshold int
	// Cooldown spaces re-probes of Down endpoints (default
	// DefaultProbeCooldown).
	Cooldown time.Duration
	// AutoPromote, when positive, promotes the freshest serving
	// follower of a shard whose primary has been Down for at least this
	// long. Zero leaves promotion to the operator (POST /v1/promote on
	// the chosen follower).
	AutoPromote time.Duration
	// Timeout bounds each probe request (default: Interval).
	Timeout time.Duration
}

// HealthState is one endpoint's position in the probe state machine.
type HealthState int

const (
	// Healthy: the last probe succeeded.
	Healthy HealthState = iota
	// Suspect: recent probes failed, but fewer than FailThreshold in a
	// row. The endpoint still takes traffic — flapping networks must
	// not trigger failover.
	Suspect
	// Down: FailThreshold consecutive probes failed. Reads fail over,
	// and after AutoPromote the freshest follower is promoted.
	Down
)

func (s HealthState) String() string {
	switch s {
	case Healthy:
		return "healthy"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// endpoint is one probed process. All fields below base are guarded by
// Prober.mu.
type endpoint struct {
	name string // metric/label identity, e.g. "s0/primary", "s1/f0"
	base string

	state     HealthState
	fails     int
	lastProbe time.Time
	downSince time.Time

	// Follower-only: the last successfully fetched status.
	status   FollowerStatusResponse
	statusOK bool
	// Primary-only: the last observed replication cursor, for lag.
	gen     int
	durable int64
	replOK  bool
}

// Prober health-checks a router's fleet and feeds the failover view
// behind readClient/writeClient. Construct via Router (Config.Health);
// drive it with Start for wall-clock probing or ProbeOnce for
// deterministic tests and simulations.
type Prober struct {
	cfg    HealthConfig
	httpc  *http.Client
	logger *slog.Logger
	tracer *obs.Tracer // the router's; probe rounds that change state record here

	mu        sync.Mutex
	primaries []*endpoint
	followers [][]*endpoint
	jitter    *mrand.Rand
	// transitioned records whether the current probe round changed any
	// endpoint's state (or issued a promotion): only those rounds finish
	// their trace — steady-state probing must not flood the ring.
	transitioned bool

	transitions *obs.CounterVec // state changes, by endpoint
	probeFails  *obs.CounterVec // failed probes, by endpoint
	promotions  *obs.Counter    // auto-promotions issued
	lagBytes    *obs.GaugeVec   // freshest follower's byte lag, by shard
	lagGens     *obs.GaugeVec   // freshest follower's generation lag, by shard
	behindSecs  *obs.GaugeVec   // seconds since the cursor advanced, by shard

	stopOnce sync.Once
	stop     chan struct{}
	done     chan struct{}
}

// newProber wires a prober over the router's topology. followers[i] may
// be empty — a shard without replicas simply has nothing to fail over
// to.
func newProber(cfg HealthConfig, primaries []string, followers [][]string, reg *obs.Registry, tracer *obs.Tracer, logger *slog.Logger) *Prober {
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultProbeInterval
	}
	if cfg.FailThreshold <= 0 {
		cfg.FailThreshold = DefaultFailThreshold
	}
	if cfg.Cooldown <= 0 {
		cfg.Cooldown = DefaultProbeCooldown
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = cfg.Interval
	}
	p := &Prober{
		cfg:    cfg,
		httpc:  &http.Client{Timeout: cfg.Timeout},
		logger: logger,
		tracer: tracer,
		jitter: mrand.New(mrand.NewSource(time.Now().UnixNano())),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),

		transitions: reg.CounterVec("health_transitions_total", "endpoint health-state changes, by endpoint", "endpoint"),
		probeFails:  reg.CounterVec("probe_failures_total", "failed health probes, by endpoint", "endpoint"),
		promotions:  reg.Counter("promotions_total", "follower promotions issued by the prober"),
		lagBytes:    reg.GaugeVec("replica_lag_bytes", "freshest follower's byte lag behind the primary, by shard", "shard"),
		lagGens:     reg.GaugeVec("replica_lag_gens", "freshest follower's generation lag behind the primary, by shard", "shard"),
		behindSecs:  reg.GaugeVec("replica_behind_seconds", "seconds since the freshest follower's cursor advanced, by shard", "shard"),
	}
	for s, base := range primaries {
		p.primaries = append(p.primaries, &endpoint{
			name: fmt.Sprintf("s%d/primary", s),
			base: base,
		})
		var fes []*endpoint
		if s < len(followers) {
			for i, fb := range followers[s] {
				fes = append(fes, &endpoint{
					name: fmt.Sprintf("s%d/f%d", s, i),
					base: fb,
				})
			}
		}
		p.followers = append(p.followers, fes)
	}
	return p
}

func (p *Prober) logf(format string, args ...any) {
	if p.logger != nil {
		p.logger.Warn(fmt.Sprintf(format, args...))
	}
}

// Start launches the wall-clock probe loop; Stop halts it.
func (p *Prober) Start() { go p.loop() }

func (p *Prober) Stop() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
}

func (p *Prober) loop() {
	defer close(p.done)
	for {
		// ±20% jitter decorrelates a fleet of routers probing the same
		// shards.
		d := p.cfg.Interval
		p.mu.Lock()
		d += time.Duration(p.jitter.Int63n(int64(p.cfg.Interval)/5)*2) - p.cfg.Interval/5
		p.mu.Unlock()
		select {
		case <-p.stop:
			return
		case <-time.After(d):
		}
		p.round(false)
	}
}

// ProbeOnce runs one synchronous probe round over every endpoint,
// ignoring the Down-endpoint cooldown — the deterministic driver for
// tests and the simulation harness (FailThreshold calls walk a dead
// endpoint to Down without any wall-clock dependency).
func (p *Prober) ProbeOnce() { p.round(true) }

func (p *Prober) round(force bool) {
	tr := p.tracer.Start("health.probe")
	p.mu.Lock()
	p.transitioned = false
	p.mu.Unlock()
	now := time.Now()
	for s := range p.primaries {
		end := tr.Span(fmt.Sprintf("probe.shard%d", s))
		p.probeShard(s, now, force, tr)
		end()
	}
	p.mu.Lock()
	keep := p.transitioned
	p.mu.Unlock()
	// Only rounds that changed the membership view (or promoted) are
	// worth a ring slot; uneventful rounds drop their trace.
	if keep {
		tr.Finish()
	}
}

func (p *Prober) probeShard(s int, now time.Time, force bool, tr *obs.Trace) {
	pe := p.primaries[s]
	if force || p.due(pe, now) {
		var ready server.ReadyResponse
		err := p.getJSON(pe.base+"/readyz", &ready)
		ok := err == nil && ready.Ready
		var repl *server.ReplicationStatusResponse
		if ok && len(p.followers[s]) > 0 {
			var rs server.ReplicationStatusResponse
			if p.getJSON(pe.base+"/v1/replication/status", &rs) == nil && rs.Replicating {
				repl = &rs
			}
		}
		p.mu.Lock()
		p.observeLocked(pe, ok, now)
		if repl != nil {
			pe.gen, pe.durable, pe.replOK = repl.Gen, repl.DurableSize, true
		}
		p.mu.Unlock()
	}
	for _, fe := range p.followers[s] {
		if !(force || p.due(fe, now)) {
			continue
		}
		var st FollowerStatusResponse
		err := p.getJSON(fe.base+"/v1/follower/status", &st)
		p.mu.Lock()
		if err == nil {
			fe.status, fe.statusOK = st, true
		}
		// A follower whose replication died (Fatal) is reachable but
		// useless as a failover target; count it as a failed probe so it
		// walks to Down rather than serving ever-staler data forever.
		p.observeLocked(fe, err == nil && st.Fatal == "", now)
		p.mu.Unlock()
	}
	p.updateLag(s)
	p.maybePromote(s, now, tr)
}

// due reports whether an endpoint should be probed this round: always,
// except Down endpoints inside their re-probe cooldown.
func (p *Prober) due(ep *endpoint, now time.Time) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ep.state != Down || now.Sub(ep.lastProbe) >= p.cfg.Cooldown
}

// observeLocked feeds one probe outcome into the state machine.
// Callers hold p.mu.
func (p *Prober) observeLocked(ep *endpoint, ok bool, now time.Time) {
	ep.lastProbe = now
	next := Healthy
	if !ok {
		ep.fails++
		p.probeFails.With(ep.name).Add(1)
		next = Suspect
		if ep.fails >= p.cfg.FailThreshold {
			next = Down
		}
	} else {
		ep.fails = 0
	}
	if next != ep.state {
		if next == Down {
			ep.downSince = now
		}
		p.transitions.With(ep.name).Add(1)
		p.transitioned = true
		p.logf("sigrouter: %s %s -> %s (%d consecutive failures)", ep.name, ep.state, next, ep.fails)
		ep.state = next
	}
}

// getJSON performs one probe request: single attempt, bounded by the
// probe timeout, 2xx-or-failure.
func (p *Prober) getJSON(url string, out any) error {
	resp, err := p.httpc.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return fmt.Errorf("status %s", resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// updateLag publishes the freshest follower's replication lag for one
// shard. Byte lag is only defined while primary and follower are in the
// same generation; across generations the gap is reported in
// generations instead.
func (p *Prober) updateLag(s int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	pe := p.primaries[s]
	t := p.targetLocked(s)
	if t.freshest < 0 {
		return
	}
	label := strconv.Itoa(s)
	if t.promoted >= 0 {
		// The follower is the shard's primary now: replication lag is no
		// longer a staleness signal, and a cursor-age gauge that keeps
		// growing after promotion would read as an outage.
		p.behindSecs.With(label).Set(0)
		p.lagBytes.With(label).Set(0)
		p.lagGens.With(label).Set(0)
		return
	}
	fe := p.followers[s][t.freshest]
	p.behindSecs.With(label).Set(int64(fe.status.BehindSeconds))
	if !pe.replOK {
		return
	}
	gens := pe.gen - fe.status.Gen
	if gens < 0 {
		gens = 0 // follower observed a rotation the prober has not yet
	}
	p.lagGens.With(label).Set(int64(gens))
	if gens == 0 {
		if bytes := pe.durable - fe.status.Offset; bytes >= 0 {
			p.lagBytes.With(label).Set(bytes)
		}
	}
}

// maybePromote issues the auto-promotion for one shard when its primary
// has been Down past the AutoPromote grace period. The target is the
// freshest serving follower; a 409 (already promoted, e.g. by an
// operator or a sibling router) counts as success.
func (p *Prober) maybePromote(s int, now time.Time, tr *obs.Trace) {
	if p.cfg.AutoPromote <= 0 {
		return
	}
	p.mu.Lock()
	pe := p.primaries[s]
	t := p.targetLocked(s)
	downFor := now.Sub(pe.downSince)
	eligible := pe.state == Down && downFor >= p.cfg.AutoPromote &&
		t.promoted < 0 && t.freshest >= 0
	var base, name string
	if eligible {
		base = p.followers[s][t.freshest].base
		name = p.followers[s][t.freshest].name
	}
	p.mu.Unlock()
	if !eligible {
		return
	}
	p.logf("sigrouter: shard %d primary down %.1fs; promoting %s", s, downFor.Seconds(), name)
	// The promote call rides the probe round's trace: the promoted node
	// records its side under the same ID, so the failover shows up as
	// one stitched event.
	end, tc := tr.SpanWith("promote." + name)
	req, err := http.NewRequest(http.MethodPost, base+"/v1/promote", nil)
	if err != nil {
		end()
		p.logf("sigrouter: promoting %s: %v", name, err)
		return
	}
	req.Header.Set("Content-Type", "application/json")
	if tc.Valid() {
		req.Header.Set(obs.TraceHeader, tc.String())
	}
	resp, err := p.httpc.Do(req)
	end()
	if err != nil {
		p.logf("sigrouter: promoting %s: %v", name, err)
		return
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK && resp.StatusCode != http.StatusConflict {
		p.logf("sigrouter: promoting %s: status %s", name, resp.Status)
		return
	}
	p.promotions.Add(1)
	p.mu.Lock()
	// Mark eagerly so traffic shifts this round; the next status probe
	// confirms from the node itself. A promotion is a membership change
	// even when no probe transitioned this round — keep the trace.
	p.followers[s][t.freshest].status.Promoted = true
	p.followers[s][t.freshest].statusOK = true
	p.transitioned = true
	p.mu.Unlock()
}

// shardTarget is the prober's routing answer for one shard.
type shardTarget struct {
	primaryDown bool
	// promoted indexes a follower that has been promoted to primary
	// (-1: none). Once present it is preferred for reads AND writes even
	// if the old primary resurfaces — the promoted node carries the
	// bumped ring epoch, and the stale primary must not take writes.
	promoted int
	// freshest indexes the serving follower with the most advanced
	// replication cursor (-1: none); gen/off/behindSec describe it.
	freshest  int
	gen       int
	off       int64
	behindSec float64
}

func (p *Prober) target(s int) shardTarget {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.targetLocked(s)
}

// hasProgress reports whether a follower's replication cursor has ever
// actually advanced. The Progressed field is authoritative; the
// fallbacks recognize progress in status bodies from builds that
// predate it.
func hasProgress(st FollowerStatusResponse) bool {
	return st.Progressed || st.AppliedRecords > 0
}

func (p *Prober) targetLocked(s int) shardTarget {
	t := shardTarget{promoted: -1, freshest: -1, primaryDown: p.primaries[s].state == Down}
	// A follower that has never replicated a byte reports the same
	// (gen, offset, behind_seconds) shape as one that just advanced —
	// zeros all round. Electing it as the freshest read (or promotion)
	// target would silently serve an empty archive, so when any serving
	// sibling has real cursor progress, never-progressed followers are
	// skipped outright. With no progressed sibling they remain eligible:
	// an empty cluster's followers are all equally (vacuously) fresh.
	candidate := func(fe *endpoint) bool {
		return fe.statusOK && !fe.status.Promoted &&
			fe.state != Down && fe.status.Serving && fe.status.Fatal == ""
	}
	anyProgress := false
	for _, fe := range p.followers[s] {
		if candidate(fe) && hasProgress(fe.status) {
			anyProgress = true
			break
		}
	}
	for i, fe := range p.followers[s] {
		if !fe.statusOK {
			continue
		}
		if fe.status.Promoted {
			t.promoted = i
			continue
		}
		if !candidate(fe) || (anyProgress && !hasProgress(fe.status)) {
			continue
		}
		if t.freshest < 0 || fe.status.Gen > t.gen ||
			(fe.status.Gen == t.gen && fe.status.Offset > t.off) {
			t.freshest, t.gen, t.off = i, fe.status.Gen, fe.status.Offset
			t.behindSec = fe.status.BehindSeconds
		}
	}
	return t
}

// EndpointHealth is one endpoint's state in the GET /v1/cluster/health
// body.
type EndpointHealth struct {
	Endpoint string `json:"endpoint"`
	State    string `json:"state"`
	Fails    int    `json:"fails,omitempty"`
	// DownSeconds is how long the endpoint has been Down (0 otherwise).
	DownSeconds float64 `json:"down_seconds,omitempty"`
	// Follower fields, when the endpoint is one.
	Serving  bool  `json:"serving,omitempty"`
	Promoted bool  `json:"promoted,omitempty"`
	Gen      int   `json:"gen,omitempty"`
	Offset   int64 `json:"offset,omitempty"`
}

// ClusterHealthResponse is the GET /v1/cluster/health body.
type ClusterHealthResponse struct {
	Enabled   bool             `json:"enabled"`
	Endpoints []EndpointHealth `json:"endpoints,omitempty"`
}

// snapshot renders the membership view for the debug endpoint.
func (p *Prober) snapshot() ClusterHealthResponse {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	resp := ClusterHealthResponse{Enabled: true}
	add := func(ep *endpoint, follower bool) {
		eh := EndpointHealth{Endpoint: ep.name, State: ep.state.String(), Fails: ep.fails}
		if ep.state == Down {
			eh.DownSeconds = now.Sub(ep.downSince).Seconds()
		}
		if follower && ep.statusOK {
			eh.Serving = ep.status.Serving
			eh.Promoted = ep.status.Promoted
			eh.Gen = ep.status.Gen
			eh.Offset = ep.status.Offset
		}
		resp.Endpoints = append(resp.Endpoints, eh)
	}
	for s, pe := range p.primaries {
		add(pe, false)
		for _, fe := range p.followers[s] {
			add(fe, true)
		}
	}
	return resp
}
