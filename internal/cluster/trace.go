package cluster

import (
	"fmt"
	"net/http"
	"sort"
	"sync"

	"graphsig/internal/obs"
	"graphsig/internal/server"
)

// Trace stitching: GET /v1/traces/{id} on the router assembles the
// distributed trace behind one routed call from every node's local
// trace ring. Each node records its segment under the shared trace ID
// with the upstream span it attaches to (ParentSpanID), so the router
// can reassemble the tree without any trace collector: fetch the
// segments, hang each one under the span that spawned it, and pin its
// clock to that span.
//
// Clock-skew normalization: machines do not share a clock, so a remote
// segment's wall-clock start is never compared with the router's.
// Instead a remote segment is pinned to the start offset of the router
// (or upstream) span that spawned it — the span whose ID it names as
// parent. Offsets inside the segment stay relative to the segment
// start. The displayed timeline is therefore conservative: a remote
// segment appears to start exactly when its parent span started, which
// absorbs the network send but never reorders causality.

// StitchedSpan is one node of the assembled trace tree: either a span
// recorded locally by some node, or a whole remote segment hanging
// under the span that spawned it.
type StitchedSpan struct {
	// Node is the recorder's cluster identity: "router", "s0/primary",
	// "s1/f0" — matching the health prober's endpoint names.
	Node           string `json:"node"`
	Name           string `json:"name"`
	SpanID         string `json:"span_id,omitempty"`
	OffsetMicros   int64  `json:"offset_micros"`
	DurationMicros int64  `json:"duration_micros"`
	// Critical marks the slowest child at each fan-out barrier: the
	// straggler that bounded the barrier's wall time.
	Critical bool            `json:"critical,omitempty"`
	Children []*StitchedSpan `json:"children,omitempty"`
}

// StitchedTraceResponse is the router's GET /v1/traces/{id} body.
type StitchedTraceResponse struct {
	ID             string   `json:"id"`
	DurationMicros int64    `json:"duration_micros"`
	Nodes          []string `json:"nodes"`
	// SpanCount is the total number of tree nodes (root included) — the
	// sum of every participating node's segment sizes.
	SpanCount int           `json:"span_count"`
	Root      *StitchedSpan `json:"root"`
	// Missing lists nodes whose ring could not be consulted (scrape
	// error, not a 404): their segments may exist but are not in the
	// tree.
	Missing []string `json:"missing,omitempty"`
}

// nodeClient pairs a per-node API client with the node's cluster
// identity.
type nodeClient struct {
	name string
	c    *server.Client
}

// nodeClients lists every data node the router knows: shard primaries
// then followers, named like the health prober's endpoints.
func (rt *Router) nodeClients() []nodeClient {
	out := make([]nodeClient, 0, len(rt.clients))
	for s, c := range rt.clients {
		out = append(out, nodeClient{name: fmt.Sprintf("s%d/primary", s), c: c})
	}
	for s, fcs := range rt.followers {
		for i, fc := range fcs {
			out = append(out, nodeClient{name: fmt.Sprintf("s%d/f%d", s, i), c: fc})
		}
	}
	return out
}

func (rt *Router) handleTraceByID(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	root, ok := rt.tracer.Find(id)
	if !ok {
		writeError(w, http.StatusNotFound,
			"trace %q not retained on the router (never finished or evicted)", id)
		return
	}
	writeJSON(w, http.StatusOK, rt.stitch(id, root))
}

// nodeTrace is one remote node's segment of a distributed trace.
type nodeTrace struct {
	node string
	snap obs.TraceSnapshot
}

// stitch fetches every node's segment of the trace concurrently and
// assembles the tree. A node answering 404 simply did not participate
// (or already evicted the segment); a node failing outright lands in
// Missing.
func (rt *Router) stitch(id string, root obs.TraceSnapshot) StitchedTraceResponse {
	nodes := rt.nodeClients()
	snaps := make([]obs.TraceSnapshot, len(nodes))
	errs := make([]error, len(nodes))
	var wg sync.WaitGroup
	for i, nc := range nodes {
		wg.Add(1)
		go func(i int, nc nodeClient) {
			defer wg.Done()
			snaps[i], errs[i] = nc.c.TraceByID(id)
		}(i, nc)
	}
	wg.Wait()

	resp := StitchedTraceResponse{ID: id, DurationMicros: root.DurationMicros}
	var remotes []nodeTrace
	for i, nc := range nodes {
		switch {
		case errs[i] == nil:
			remotes = append(remotes, nodeTrace{node: nc.name, snap: snaps[i]})
		case server.APIStatus(errs[i]) == http.StatusNotFound:
			// Did not participate, or its bounded ring moved on.
		default:
			resp.Missing = append(resp.Missing, fmt.Sprintf("%s: %v", nc.name, errs[i]))
		}
	}
	resp.Root, resp.Nodes, resp.SpanCount = stitchTree(root, remotes)
	return resp
}

// stitchTree assembles the tree from the router's own trace plus the
// remote segments. Offsets are stored parent-relative during assembly,
// then resolved to absolute (root-relative) in one walk — which is
// where the clock-skew pinning happens: a remote segment's relative
// offset is zero, i.e. it starts when its parent span started.
func stitchTree(root obs.TraceSnapshot, remotes []nodeTrace) (*StitchedSpan, []string, int) {
	byID := make(map[string]*StitchedSpan)
	rootSpan := &StitchedSpan{
		Node: "router", Name: root.Name, SpanID: root.SpanID,
		DurationMicros: root.DurationMicros,
	}
	if root.SpanID != "" {
		byID[root.SpanID] = rootSpan
	}
	addSpans(rootSpan, "router", root.Spans, byID)

	// Two passes so a segment can attach under another segment's span
	// (the parent may appear later in the node list than the child).
	segs := make([]*StitchedSpan, len(remotes))
	for i, rem := range remotes {
		seg := &StitchedSpan{
			Node: rem.node, Name: rem.snap.Name, SpanID: rem.snap.SpanID,
			DurationMicros: rem.snap.DurationMicros,
		}
		if rem.snap.SpanID != "" {
			byID[rem.snap.SpanID] = seg
		}
		addSpans(seg, rem.node, rem.snap.Spans, byID)
		segs[i] = seg
	}
	for i, rem := range remotes {
		parent := byID[rem.snap.ParentSpanID]
		if parent == nil || parent == segs[i] {
			parent = rootSpan
		}
		parent.Children = append(parent.Children, segs[i])
	}

	nodes := []string{"router"}
	seen := map[string]bool{"router": true}
	for _, rem := range remotes {
		if !seen[rem.node] {
			seen[rem.node] = true
			nodes = append(nodes, rem.node)
		}
	}

	count := resolve(rootSpan, 0)
	markCritical(rootSpan)
	return rootSpan, nodes, count
}

// addSpans hangs a segment's recorded spans under it, offsets still
// segment-relative, registering span IDs for parentage matching.
func addSpans(parent *StitchedSpan, node string, spans []obs.SpanSnapshot, byID map[string]*StitchedSpan) {
	for _, sp := range spans {
		child := &StitchedSpan{
			Node: node, Name: sp.Name, SpanID: sp.SpanID,
			OffsetMicros: sp.OffsetMicros, DurationMicros: sp.DurationMicros,
		}
		if sp.SpanID != "" {
			byID[sp.SpanID] = child
		}
		parent.Children = append(parent.Children, child)
	}
}

// resolve converts parent-relative offsets to absolute ones, sorts
// each child list by start time, and counts the tree.
func resolve(n *StitchedSpan, base int64) int {
	n.OffsetMicros += base
	count := 1
	for _, c := range n.Children {
		count += resolve(c, n.OffsetMicros)
	}
	sort.SliceStable(n.Children, func(i, j int) bool {
		return n.Children[i].OffsetMicros < n.Children[j].OffsetMicros
	})
	return count
}

// markCritical marks, at every fan-out, the child that bounded its
// parent's wall time — the slowest shard per barrier. The root is
// always on the critical path.
func markCritical(n *StitchedSpan) {
	n.Critical = true
	var slowest *StitchedSpan
	for _, c := range n.Children {
		if slowest == nil || c.DurationMicros > slowest.DurationMicros {
			slowest = c
		}
		markChildren(c)
	}
	if slowest != nil {
		slowest.Critical = true
	}
}

// markChildren applies the per-barrier rule below the root without
// forcing every interior node onto the critical path.
func markChildren(n *StitchedSpan) {
	var slowest *StitchedSpan
	for _, c := range n.Children {
		if slowest == nil || c.DurationMicros > slowest.DurationMicros {
			slowest = c
		}
		markChildren(c)
	}
	if slowest != nil {
		slowest.Critical = true
	}
}
