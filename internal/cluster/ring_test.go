package cluster

import (
	"fmt"
	"testing"
)

// TestRingGolden pins assignments and epochs to literal values: the
// ring is a cross-process contract (router, shards and offline tools
// build it independently), so any change to the hash or point layout
// is a breaking topology change and must show up here.
func TestRingGolden(t *testing.T) {
	r, err := NewRing(3, 128)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Epoch(); got != 4691627404753987221 {
		t.Fatalf("epoch(3,128) = %d, golden 4691627404753987221", got)
	}
	r2, err := NewRing(2, 128)
	if err != nil {
		t.Fatal(err)
	}
	if got := r2.Epoch(); got != 11897401874864300687 {
		t.Fatalf("epoch(2,128) = %d, golden 11897401874864300687", got)
	}
	golden := map[string]int{
		"10.0.0.0":    1,
		"10.0.0.1":    1,
		"10.0.0.7":    1,
		"198.18.0.42": 2,
		"h00":         2,
	}
	for label, want := range golden {
		if got := r.Shard(label); got != want {
			t.Errorf("Shard(%q) = %d, golden %d", label, got, want)
		}
	}
}

// TestRingDeterminism checks that two independently built rings agree
// on every assignment — the property that lets any process compute
// placement without coordination.
func TestRingDeterminism(t *testing.T) {
	a, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(5, 64)
	if err != nil {
		t.Fatal(err)
	}
	if a.Epoch() != b.Epoch() {
		t.Fatalf("epochs differ: %d vs %d", a.Epoch(), b.Epoch())
	}
	for i := 0; i < 5000; i++ {
		label := fmt.Sprintf("host-%d", i)
		if a.Shard(label) != b.Shard(label) {
			t.Fatalf("rings disagree on %q: %d vs %d", label, a.Shard(label), b.Shard(label))
		}
	}
	// Different membership or vnode count must change the epoch.
	c, _ := NewRing(6, 64)
	d, _ := NewRing(5, 128)
	if c.Epoch() == a.Epoch() || d.Epoch() == a.Epoch() {
		t.Fatalf("epoch does not distinguish configurations: %d / %d / %d",
			a.Epoch(), c.Epoch(), d.Epoch())
	}
}

// TestRingBalance bounds per-shard load skew under the default vnode
// count: no shard may see more than twice or less than half its fair
// share of a large uniform key population.
func TestRingBalance(t *testing.T) {
	const shards, keys = 8, 20000
	r, err := NewRing(shards, 0)
	if err != nil {
		t.Fatal(err)
	}
	if r.VNodes() != DefaultVNodes {
		t.Fatalf("vnodes = %d, want default %d", r.VNodes(), DefaultVNodes)
	}
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[r.Shard(fmt.Sprintf("10.0.%d.%d", i/250, i%250))]++
	}
	fair := keys / shards
	for s, n := range counts {
		if n < fair/2 || n > fair*2 {
			t.Errorf("shard %d holds %d keys, fair share %d (counts %v)", s, n, fair, counts)
		}
	}
}

// TestRingMinimalMovement checks the consistent-hashing contract:
// growing the membership from n to n+1 shards moves only keys that
// land on the new shard — nothing reshuffles between old shards — and
// the moved fraction stays near 1/(n+1).
func TestRingMinimalMovement(t *testing.T) {
	const keys = 20000
	old, err := NewRing(10, 0)
	if err != nil {
		t.Fatal(err)
	}
	grown, err := NewRing(11, 0)
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < keys; i++ {
		label := fmt.Sprintf("host-%d", i)
		before, after := old.Shard(label), grown.Shard(label)
		if before == after {
			continue
		}
		moved++
		if after != 10 {
			t.Fatalf("%q moved from shard %d to old shard %d; growth may only move keys to the new shard", label, before, after)
		}
	}
	// Expectation is keys/11 ≈ 9%; allow generous slack for vnode
	// placement variance but fail on anything near a reshuffle.
	if frac := float64(moved) / keys; frac > 0.20 {
		t.Fatalf("%.1f%% of keys moved when adding one shard to ten; consistent hashing should move ≈9%%", 100*frac)
	}
	if moved == 0 {
		t.Fatal("no keys moved to the new shard — it is not taking load")
	}
}

func TestRingInvalid(t *testing.T) {
	if _, err := NewRing(0, 16); err == nil {
		t.Fatal("NewRing(0) should error")
	}
	if _, err := NewRing(-3, 16); err == nil {
		t.Fatal("NewRing(-3) should error")
	}
}
