package cluster

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphsig/internal/datagen"
	"graphsig/internal/netflow"
	"graphsig/internal/obs"
	"graphsig/internal/server"
)

// signatureQuery builds a signature search whose query signature lives
// on the given shard, so a routed fan-out demonstrably does real work
// there. Signature (not label) queries keep the trace shape simple:
// exactly one segment per node, no owner-shard resolution segment.
func signatureQuery(t *testing.T, rt *Router, records []netflow.Record, shard int) server.SearchRequest {
	t.Helper()
	for _, rec := range records {
		if rt.Ring().Shard(rec.Src) != shard {
			continue
		}
		hist, err := rt.History(rec.Src, server.HistoryQuery{})
		if err != nil {
			continue
		}
		for i := len(hist.History) - 1; i >= 0; i-- {
			if len(hist.History[i].Signature.Nodes) > 0 {
				sig := hist.History[i].Signature
				return server.SearchRequest{Signature: &sig, K: 5, MaxDist: 0.99}
			}
		}
	}
	t.Fatalf("no archived signature owned by shard %d", shard)
	return server.SearchRequest{}
}

// waitTrace polls a node's trace ring until the segment appears —
// nodes archive their segment under a deferred Finish that may still be
// in flight when the routed response reaches the test.
func waitTrace(t *testing.T, c *server.Client, id string) obs.TraceSnapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		snap, err := c.TraceByID(id)
		if err == nil {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %q never appeared on node: %v", id, err)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func waitRouterTrace(t *testing.T, rt *Router, id string) obs.TraceSnapshot {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if snap, ok := rt.Tracer().Find(id); ok {
			return snap
		}
		if time.Now().After(deadline) {
			t.Fatalf("trace %q never appeared on the router ring", id)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitStitched polls the router's stitching endpoint until the tree
// spans at least minNodes nodes.
func waitStitched(t *testing.T, base, id string, minNodes int) StitchedTraceResponse {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp, err := http.Get(base + "/v1/traces/" + id)
		if err != nil {
			t.Fatal(err)
		}
		var st StitchedTraceResponse
		if resp.StatusCode == http.StatusOK {
			if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
				resp.Body.Close()
				t.Fatal(err)
			}
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK && len(st.Nodes) >= minNodes {
			return st
		}
		if time.Now().After(deadline) {
			t.Fatalf("stitched trace %q never reached %d nodes (last status %d, nodes %v)",
				id, minNodes, resp.StatusCode, st.Nodes)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func countStitched(n *StitchedSpan) int {
	count := 1
	for _, c := range n.Children {
		count += countStitched(c)
	}
	return count
}

func hasCriticalDescendant(n *StitchedSpan) bool {
	for _, c := range n.Children {
		if c.Critical || hasCriticalDescendant(c) {
			return true
		}
	}
	return false
}

func containsNode(nodes []string, want string) bool {
	for _, n := range nodes {
		if n == want {
			return true
		}
	}
	return false
}

// federatedSample finds one sample by family name and exact rendered
// label set in a parsed exposition.
func federatedSample(fams []obs.Family, name, labels string) (float64, bool) {
	for _, f := range fams {
		if f.Name != name {
			continue
		}
		for _, s := range f.Samples {
			if s.Labels == labels {
				return s.Value, true
			}
		}
	}
	return 0, false
}

// TestClusterFederateSmoke is the observability acceptance test on a
// healthy 2-shard cluster: a traced batch search produces ONE trace ID
// on the router and on every shard; GET /v1/traces/{id} stitches the
// segments into a single tree whose span count is the sum of the
// per-node segment sizes; and GET /metrics?federate=1 serves a valid
// exposition whose cluster counter aggregates equal the per-shard sums.
func TestClusterFederateSmoke(t *testing.T) {
	gcfg := datagen.DefaultEnterpriseConfig(53)
	gcfg.LocalHosts = 12
	gcfg.ExternalHosts = 150
	gcfg.Windows = 2
	gcfg.MultiusageIndividuals = 1
	data, err := datagen.GenerateEnterprise(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	baseCfg := func(shard int) server.Config {
		return server.Config{
			Stream:        testStreamConfig(gcfg),
			StoreCapacity: 8,
			Node:          &server.Identity{Role: "primary", Shard: shard, Shards: 2},
		}
	}
	srvA, tsA := newTestNode(t, baseCfg(0))
	srvB, tsB := newTestNode(t, baseCfg(1))
	rt, err := NewRouter(Config{
		Shards:  [][]string{{tsA.URL}, {tsB.URL}},
		Timeout: 30 * time.Second,
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	if _, err := rt.Ingest("fed-000000", data.Records); err != nil {
		t.Fatal(err)
	}
	for _, s := range []*server.Server{srvA, srvB} {
		if _, err := s.Flush(); err != nil {
			t.Fatal(err)
		}
	}

	// One query per shard, so both shards demonstrably search.
	queries := []server.SearchRequest{
		signatureQuery(t, rt, data.Records, 0),
		signatureQuery(t, rt, data.Records, 1),
	}
	body := mustJSON(t, server.BatchSearchRequest{Queries: queries})
	resp, err := http.Post(rts.URL+"/v1/search/batch?debug=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch search status %d", resp.StatusCode)
	}
	tc := obs.ParseTraceContext(resp.Header.Get(obs.TraceHeader))
	if !tc.Valid() {
		t.Fatalf("batch response carried no usable %s header: %q",
			obs.TraceHeader, resp.Header.Get(obs.TraceHeader))
	}
	var batch BatchSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if batch.ShardsOK != 2 {
		t.Fatalf("batch answered %d/%d shards", batch.ShardsOK, batch.ShardsTotal)
	}
	if batch.TraceID != tc.TraceID {
		t.Fatalf("body trace_id %q != header trace ID %q", batch.TraceID, tc.TraceID)
	}

	// ?debug=1: one explain block per shard, none failed.
	if len(batch.Debug) != 2 {
		t.Fatalf("debug blocks %+v, want one per shard", batch.Debug)
	}
	debugShards := map[int]bool{}
	for _, d := range batch.Debug {
		if d.Error != "" {
			t.Fatalf("shard %d debug error: %s", d.Shard, d.Error)
		}
		debugShards[d.Shard] = true
	}
	if !debugShards[0] || !debugShards[1] {
		t.Fatalf("debug blocks cover shards %v, want 0 and 1", debugShards)
	}

	// ONE trace ID: every participating node retained a segment under
	// it, attached to a router span.
	segA := waitTrace(t, server.NewClient(tsA.URL), tc.TraceID)
	segB := waitTrace(t, server.NewClient(tsB.URL), tc.TraceID)
	routerSnap := waitRouterTrace(t, rt, tc.TraceID)
	for _, seg := range []obs.TraceSnapshot{segA, segB} {
		if seg.ParentSpanID == "" {
			t.Fatalf("shard segment %+v has no parent span; did not adopt the router context", seg)
		}
	}

	// The stitched tree holds the router plus both shards, span count
	// equal to the sum of the per-node segment sizes.
	want := 1 + len(routerSnap.Spans) + 1 + len(segA.Spans) + 1 + len(segB.Spans)
	st := waitStitched(t, rts.URL, tc.TraceID, 3)
	if st.ID != tc.TraceID {
		t.Fatalf("stitched ID %q, want %q", st.ID, tc.TraceID)
	}
	if len(st.Missing) != 0 {
		t.Fatalf("healthy cluster stitched with missing nodes: %v", st.Missing)
	}
	for _, node := range []string{"router", "s0/primary", "s1/primary"} {
		if !containsNode(st.Nodes, node) {
			t.Fatalf("stitched nodes %v missing %s", st.Nodes, node)
		}
	}
	if st.SpanCount != want {
		t.Fatalf("stitched span count %d, want %d (router %d + shard segments %d and %d)",
			st.SpanCount, want, 1+len(routerSnap.Spans), 1+len(segA.Spans), 1+len(segB.Spans))
	}
	if got := countStitched(st.Root); got != st.SpanCount {
		t.Fatalf("tree holds %d spans but span_count says %d", got, st.SpanCount)
	}
	if !st.Root.Critical || !hasCriticalDescendant(st.Root) {
		t.Fatal("critical path not marked on the stitched tree")
	}

	// Federation: the merged exposition validates, and the
	// instance="cluster" counter aggregates equal the per-shard sums.
	fresp, err := http.Get(rts.URL + "/metrics?federate=1")
	if err != nil {
		t.Fatal(err)
	}
	fbody, err := io.ReadAll(fresp.Body)
	fresp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if fresp.StatusCode != http.StatusOK {
		t.Fatalf("federate status %d: %s", fresp.StatusCode, fbody)
	}
	if _, err := obs.ValidateExposition(bytes.NewReader(fbody)); err != nil {
		t.Fatalf("federated exposition invalid: %v\n%s", err, fbody)
	}
	fams, err := obs.ParseExposition(bytes.NewReader(fbody))
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"flows_accepted", "search_queries"} {
		wantSum := float64(srvA.Registry().Snapshot()[name] + srvB.Registry().Snapshot()[name])
		got, ok := federatedSample(fams, name, `instance="cluster"`)
		if !ok {
			t.Fatalf("federated exposition has no cluster aggregate for %s:\n%s", name, fbody)
		}
		if got != wantSum {
			t.Fatalf("cluster %s = %v, want per-shard sum %v", name, got, wantSum)
		}
	}
	if wantSum := float64(srvA.Registry().Snapshot()["flows_accepted"]); wantSum == 0 {
		t.Fatal("shard 0 accepted nothing; federation sums prove nothing")
	}
	if got := rt.Registry().Snapshot()["federate_scrape_errors"]; got != 0 {
		t.Fatalf("federate_scrape_errors = %d on a healthy cluster", got)
	}
}

// TestClusterStitchedFailoverTrace checks trace propagation across a
// failover read: with shard 0's primary dead and its follower serving
// reads, a routed batch search still yields exactly one trace ID on
// every participating node, and the stitched tree hangs the follower's
// segment (s0/f0) under the router's fan-out — with the unreachable
// primary reported in missing rather than silently dropped.
func TestClusterStitchedFailoverTrace(t *testing.T) {
	gcfg := datagen.DefaultEnterpriseConfig(47)
	gcfg.LocalHosts = 12
	gcfg.ExternalHosts = 150
	gcfg.Windows = 2
	gcfg.MultiusageIndividuals = 1
	data, err := datagen.GenerateEnterprise(gcfg)
	if err != nil {
		t.Fatal(err)
	}

	srvA, tsA := newTestNode(t, server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		SnapshotDir:   t.TempDir(),
		Replicate:     true,
		Node:          &server.Identity{Role: "primary", Shard: 0, Shards: 2},
	})
	srvB, tsB := newTestNode(t, server.Config{
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		Node:          &server.Identity{Role: "primary", Shard: 1, Shards: 2},
	})
	_ = srvB

	f, err := NewFollower(FollowerConfig{
		Primary:       []string{tsA.URL},
		Stream:        testStreamConfig(gcfg),
		StoreCapacity: 8,
		Poll:          5 * time.Millisecond,
		ChunkBytes:    2048,
		Node:          &server.Identity{Role: "follower", Shard: 0, Shards: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.Start()
	defer f.Stop()
	fts := httptest.NewServer(f.FollowerHandler())
	defer fts.Close()

	rt, err := NewRouter(Config{
		Shards:    [][]string{{tsA.URL}, {tsB.URL}},
		Followers: [][]string{{fts.URL}, nil},
		Health: &HealthConfig{
			Interval:      time.Hour, // never fires: the test drives ProbeOnce
			FailThreshold: 3,
			Cooldown:      time.Millisecond,
			Timeout:       5 * time.Second,
		},
		Timeout:    30 * time.Second,
		MaxRetries: -1, // fail fast against the killed primary
	})
	if err != nil {
		t.Fatal(err)
	}
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	if _, err := rt.Ingest("fot-000000", data.Records); err != nil {
		t.Fatal(err)
	}
	if _, err := srvA.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := srvB.Flush(); err != nil {
		t.Fatal(err)
	}

	// Resolve the query signatures while everything is still alive.
	queries := []server.SearchRequest{
		signatureQuery(t, rt, data.Records, 0),
		signatureQuery(t, rt, data.Records, 1),
	}

	// Barrier: the follower must hold the primary's durable state
	// before the kill, or failover reads would answer from a gap.
	rs, err := server.NewClient(tsA.URL).ReplicationStatus()
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(15 * time.Second)
	for {
		st := f.Stats()
		if st.Fatal != "" {
			t.Fatalf("follower died: %s", st.Fatal)
		}
		if st.Gen > rs.Gen || (st.Gen == rs.Gen && st.Offset >= rs.DurableSize) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower never reached primary cursor (%d,%d): %+v", rs.Gen, rs.DurableSize, st)
		}
		time.Sleep(10 * time.Millisecond)
	}

	// Kill shard 0's primary; the prober marks it down (no promotion —
	// AutoPromote is unset — so reads fail over to the follower).
	tsA.Close()
	srvA.Abort()
	p := rt.Prober()
	for i := 0; i < 3; i++ {
		p.ProbeOnce()
	}
	if tgt := p.target(0); !tgt.primaryDown || tgt.freshest < 0 {
		t.Fatalf("prober state %+v, want primary down with a serving follower", tgt)
	}

	body := mustJSON(t, server.BatchSearchRequest{Queries: queries})
	resp, err := http.Post(rts.URL+"/v1/search/batch?debug=1", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("failover batch search status %d", resp.StatusCode)
	}
	tc := obs.ParseTraceContext(resp.Header.Get(obs.TraceHeader))
	if !tc.Valid() {
		t.Fatal("failover batch response carried no trace header")
	}
	var batch BatchSearchResponse
	if err := json.NewDecoder(resp.Body).Decode(&batch); err != nil {
		t.Fatal(err)
	}
	if batch.ShardsOK != 2 {
		t.Fatalf("failover batch answered %d/%d shards, want 2/2 via the follower", batch.ShardsOK, batch.ShardsTotal)
	}
	if len(batch.StaleShards) != 1 || batch.StaleShards[0].Shard != 0 {
		t.Fatalf("stale_shards %+v, want shard 0", batch.StaleShards)
	}

	// ONE trace ID on every participating node: the router, the
	// follower that served shard 0's read, and shard 1's primary.
	segF := waitTrace(t, server.NewClient(fts.URL), tc.TraceID)
	segB := waitTrace(t, server.NewClient(tsB.URL), tc.TraceID)
	routerSnap := waitRouterTrace(t, rt, tc.TraceID)
	if segF.ParentSpanID == "" || segB.ParentSpanID == "" {
		t.Fatalf("remote segments lost parentage: follower %+v, shard1 %+v", segF, segB)
	}

	want := 1 + len(routerSnap.Spans) + 1 + len(segF.Spans) + 1 + len(segB.Spans)
	st := waitStitched(t, rts.URL, tc.TraceID, 3)
	for _, node := range []string{"router", "s0/f0", "s1/primary"} {
		if !containsNode(st.Nodes, node) {
			t.Fatalf("stitched nodes %v missing %s", st.Nodes, node)
		}
	}
	if st.SpanCount != want {
		t.Fatalf("stitched span count %d, want %d", st.SpanCount, want)
	}
	// The dead primary is reported, not silently dropped.
	if len(st.Missing) != 1 || !strings.Contains(st.Missing[0], "s0/primary") {
		t.Fatalf("missing %v, want the dead s0/primary", st.Missing)
	}
	if !st.Root.Critical || !hasCriticalDescendant(st.Root) {
		t.Fatal("critical path not marked on the failover trace")
	}
	if got := rt.Registry().Snapshot()["failover_reads_total_0"]; got == 0 {
		t.Fatal("failover_reads_total did not move; the trace did not cross a failover read")
	}
}
