// Command sigrouterd fronts a fleet of sigserverd shards with the same
// v1 API a single node serves: it partitions ingest batches across the
// shards by consistent hashing of source labels, scatter-gathers the
// read paths, and merges the answers bit-identically to a single-node
// run over the union of the data.
//
//	sigrouterd -addr :8780 \
//	    -shard http://10.0.0.1:8787,http://10.0.0.1:8788 \
//	    -shard http://10.0.0.2:8787
//
// Each -shard flag names one shard; a comma-separated list gives that
// shard's seed addresses (the router fails over between them). Shard
// order must be stable across router restarts and must match the
// -shard-index each sigserverd was started with — the ring is the
// contract, and /readyz exposes its epoch so mismatches are visible.
//
// Fault tolerance: each -follower flag lists one shard's WAL-tailing
// replicas (repeat in shard-index order, "" for a shard with none).
// With followers configured the router runs a health prober; while a
// primary is down, reads fail over to the freshest follower (responses
// carry stale_shards), and with -auto-promote set the router promotes
// that follower to read-write after the primary stays down that long.
//
//	sigrouterd -addr :8780 \
//	    -shard http://10.0.0.1:8787 -follower http://10.0.1.1:8789 \
//	    -shard http://10.0.0.2:8787 -follower http://10.0.1.2:8789 \
//	    -auto-promote 30s
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphsig/internal/cluster"
)

// shardList collects repeated -shard flags, each a comma-separated
// seed-address list for one shard.
type shardList [][]string

func (s *shardList) String() string { return fmt.Sprint([][]string(*s)) }

func (s *shardList) Set(v string) error {
	seeds := strings.Split(v, ",")
	for i, a := range seeds {
		seeds[i] = strings.TrimSpace(a)
		if seeds[i] == "" {
			return fmt.Errorf("empty address in shard %q", v)
		}
	}
	*s = append(*s, seeds)
	return nil
}

// followerList collects repeated -follower flags, each a
// comma-separated replica-address list for one shard ("" = none).
type followerList [][]string

func (s *followerList) String() string { return fmt.Sprint([][]string(*s)) }

func (s *followerList) Set(v string) error {
	var addrs []string
	for _, a := range strings.Split(v, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	*s = append(*s, addrs)
	return nil
}

type options struct {
	addr      string
	shards    shardList
	followers followerList
	vnodes    int
	timeout   time.Duration
	retries   int

	probeInterval time.Duration
	probeCooldown time.Duration
	probeFails    int
	autoPromote   time.Duration

	debugAddr string
	slowOp    time.Duration
	traceCap  int
}

func main() {
	var o options
	fs := flag.NewFlagSet("sigrouterd", flag.ExitOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8780", "listen address")
	fs.Var(&o.shards, "shard", "shard seed addresses, comma-separated (repeat once per shard, in shard-index order)")
	fs.Var(&o.followers, "follower", "follower addresses for one shard, comma-separated (repeat in shard-index order; \"\" for a shard with none)")
	fs.IntVar(&o.vnodes, "vnodes", 0, "virtual nodes per shard on the hash ring (0 = default; must match the shards)")
	fs.DurationVar(&o.timeout, "timeout", cluster.DefaultScatterTimeout, "per-shard deadline for scatter-gather reads")
	fs.IntVar(&o.retries, "retries", 0, "extra attempts per shard call (0 = client default)")
	fs.DurationVar(&o.probeInterval, "probe-interval", cluster.DefaultProbeInterval, "health probe interval (with followers configured)")
	fs.DurationVar(&o.probeCooldown, "probe-cooldown", cluster.DefaultProbeCooldown, "re-probe spacing for nodes marked down")
	fs.IntVar(&o.probeFails, "probe-fail-threshold", cluster.DefaultFailThreshold, "consecutive probe failures before a node is marked down")
	fs.DurationVar(&o.autoPromote, "auto-promote", 0, "promote a shard's freshest follower after its primary stays down this long (0 = operator-driven only)")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "pprof debug listen address (empty = disabled)")
	fs.DurationVar(&o.slowOp, "slow-op", 0, "log routed spans at or above this duration (0 = disabled)")
	fs.IntVar(&o.traceCap, "trace-capacity", 0, "recent traces retained for GET /v1/traces (0 = default)")
	_ = fs.Parse(os.Args[1:])

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sigrouterd:", err)
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	logger := slog.New(slog.NewTextHandler(out, nil))

	cfg := cluster.Config{
		Shards:        o.shards,
		Followers:     o.followers,
		VNodes:        o.vnodes,
		Timeout:       o.timeout,
		MaxRetries:    o.retries,
		Logger:        logger,
		SlowOp:        o.slowOp,
		TraceCapacity: o.traceCap,
	}
	if len(o.followers) > 0 {
		cfg.Health = &cluster.HealthConfig{
			Interval:      o.probeInterval,
			Cooldown:      o.probeCooldown,
			FailThreshold: o.probeFails,
			AutoPromote:   o.autoPromote,
		}
	}
	rt, err := cluster.NewRouter(cfg)
	if err != nil {
		return err
	}
	if p := rt.Prober(); p != nil {
		p.Start()
		defer p.Stop()
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	if o.debugAddr != "" {
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() { _ = http.Serve(dln, dmux) }()
		logger.Info("sigrouterd: pprof debug server on http://" + dln.Addr().String() + "/debug/pprof/")
	}
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	id := rt.Identity()
	logger.Info(fmt.Sprintf("sigrouterd: serving on http://%s", ln.Addr()),
		"shards", id.Shards, "ring_epoch", id.RingEpoch)

	var runErr error
	select {
	case <-ctx.Done():
		logger.Info("sigrouterd: signal received, shutting down")
	case runErr = <-errc:
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}
