// Command sigrouterd fronts a fleet of sigserverd shards with the same
// v1 API a single node serves: it partitions ingest batches across the
// shards by consistent hashing of source labels, scatter-gathers the
// read paths, and merges the answers bit-identically to a single-node
// run over the union of the data.
//
//	sigrouterd -addr :8780 \
//	    -shard http://10.0.0.1:8787,http://10.0.0.1:8788 \
//	    -shard http://10.0.0.2:8787
//
// Each -shard flag names one shard; a comma-separated list gives that
// shard's seed addresses (the router fails over between them). Shard
// order must be stable across router restarts and must match the
// -shard-index each sigserverd was started with — the ring is the
// contract, and /readyz exposes its epoch so mismatches are visible.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"graphsig/internal/cluster"
)

// shardList collects repeated -shard flags, each a comma-separated
// seed-address list for one shard.
type shardList [][]string

func (s *shardList) String() string { return fmt.Sprint([][]string(*s)) }

func (s *shardList) Set(v string) error {
	seeds := strings.Split(v, ",")
	for i, a := range seeds {
		seeds[i] = strings.TrimSpace(a)
		if seeds[i] == "" {
			return fmt.Errorf("empty address in shard %q", v)
		}
	}
	*s = append(*s, seeds)
	return nil
}

type options struct {
	addr    string
	shards  shardList
	vnodes  int
	timeout time.Duration
	retries int
}

func main() {
	var o options
	fs := flag.NewFlagSet("sigrouterd", flag.ExitOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8780", "listen address")
	fs.Var(&o.shards, "shard", "shard seed addresses, comma-separated (repeat once per shard, in shard-index order)")
	fs.IntVar(&o.vnodes, "vnodes", 0, "virtual nodes per shard on the hash ring (0 = default; must match the shards)")
	fs.DurationVar(&o.timeout, "timeout", cluster.DefaultScatterTimeout, "per-shard deadline for scatter-gather reads")
	fs.IntVar(&o.retries, "retries", 0, "extra attempts per shard call (0 = client default)")
	_ = fs.Parse(os.Args[1:])

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sigrouterd:", err)
		os.Exit(1)
	}
}

func run(o options, out io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	logger := slog.New(slog.NewTextHandler(out, nil))

	rt, err := cluster.NewRouter(cluster.Config{
		Shards:     o.shards,
		VNodes:     o.vnodes,
		Timeout:    o.timeout,
		MaxRetries: o.retries,
		Logger:     logger,
	})
	if err != nil {
		return err
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	id := rt.Identity()
	logger.Info(fmt.Sprintf("sigrouterd: serving on http://%s", ln.Addr()),
		"shards", id.Shards, "ring_epoch", id.RingEpoch)

	var runErr error
	select {
	case <-ctx.Done():
		logger.Info("sigrouterd: signal received, shutting down")
	case runErr = <-errc:
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}
