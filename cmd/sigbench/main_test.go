package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// testOpts mirrors the flag defaults: SoA scatter kernels on, the
// thresholded prefilter sweep on.
var testOpts = pairwiseOpts{SoA: true, Prefilter: true, Threshold: 0.5}

// The per-experiment paths run at a small scale; RunAll is covered by
// the experiments package test and the full-scale binary run.
func TestSigbenchExperiments(t *testing.T) {
	for _, name := range []string{
		"tables", "fig1", "fig2", "fig3a", "fig3b",
		"fig4", "fig5", "fig6", "anomaly", "blend", "significance",
		"deanon", "phone", "prune", "hops", "horizon", "ablations",
		"pairwise",
	} {
		if err := run(7, 0.2, name, "", testOpts); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSigbenchUnknownExperiment(t *testing.T) {
	if err := run(7, 0.2, "bogus", "", testOpts); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSigbenchBadScale(t *testing.T) {
	if err := run(7, 0, "tables", "", testOpts); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

// TestSigbenchPairwiseJSON checks the machine-readable report: one
// entry per extended distance, engine bit-identical to naive, plausible
// throughput numbers.
func TestSigbenchPairwiseJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_pairwise.json")
	if err := run(7, 0.2, "pairwise", path, testOpts); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var report pairwiseReport
	if err := json.Unmarshal(blob, &report); err != nil {
		t.Fatal(err)
	}
	if len(report.Results) == 0 {
		t.Fatal("no pairwise results")
	}
	for _, r := range report.Results {
		if !r.Identical {
			t.Fatalf("%s: engine not bit-identical to naive", r.Distance)
		}
		if r.Pairs != r.Signatures*(r.Signatures-1) {
			t.Fatalf("%s: pairs %d does not match %d signatures", r.Distance, r.Pairs, r.Signatures)
		}
		if r.Naive.NsPerPair <= 0 || r.Engine.NsPerPair <= 0 || r.Speedup <= 0 {
			t.Fatalf("%s: implausible timings: %+v", r.Distance, r)
		}
		if r.EngineKernel.NsPerPair <= 0 {
			t.Fatalf("%s: missing engine_kernel side: %+v", r.Distance, r)
		}
		// The alloc-free rebuild pins the engine side to view
		// construction only — far under the old ~1.5k per run.
		if r.Engine.Allocs > 152 {
			t.Fatalf("%s: engine side allocates %d times, want ≤152", r.Distance, r.Engine.Allocs)
		}
		if r.PrefilterOff == nil || r.PrefilterOn == nil {
			t.Fatalf("%s: missing thresholded prefilter sides", r.Distance)
		}
	}
}

func TestSigbenchProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	if err := profiledRun(7, 0.2, "fig1", "", testOpts, cpu, mem); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		info, err := os.Stat(p)
		if err != nil {
			t.Fatal(err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", p)
		}
	}
}
