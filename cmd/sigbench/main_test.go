package main

import "testing"

// The per-experiment paths run at a small scale; RunAll is covered by
// the experiments package test and the full-scale binary run.
func TestSigbenchExperiments(t *testing.T) {
	for _, name := range []string{
		"tables", "fig1", "fig2", "fig3a", "fig3b",
		"fig4", "fig5", "fig6", "anomaly", "blend", "significance",
		"deanon", "phone", "prune", "hops", "horizon", "ablations",
	} {
		if err := run(7, 0.2, name); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestSigbenchUnknownExperiment(t *testing.T) {
	if err := run(7, 0.2, "bogus"); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestSigbenchBadScale(t *testing.T) {
	if err := run(7, 0, "tables"); err == nil {
		t.Fatal("scale 0 accepted")
	}
}
