package main

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"os"
	"runtime"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/distmat"
	"graphsig/internal/experiments"
	"graphsig/internal/obs"
	"graphsig/internal/stats"
)

// pairwiseOpts carries the pairwise experiment's flags.
type pairwiseOpts struct {
	// SoA selects the scatter SoA row kernels (the default engine);
	// false A/Bs the per-candidate match-list folds instead.
	SoA bool
	// Prefilter adds the thresholded sweep: PairsWithin at Threshold
	// with the mask prefilter off and on, asserted bit-identical.
	Prefilter bool
	// Threshold is the maxDist of the thresholded sweep.
	Threshold float64
	// Baseline, when set, diffs engine pairs/sec against a committed
	// BENCH_pairwise.json and warns on >20% regressions.
	Baseline string
}

// pairwiseSide is one measured implementation (naive, dense engine, or
// a thresholded engine variant) of the all-pairs computation.
type pairwiseSide struct {
	TotalNs     int64   `json:"total_ns"`
	NsPerPair   float64 `json:"ns_per_pair"`
	PairsPerSec float64 `json:"pairs_per_sec"`
	Allocs      uint64  `json:"allocs"`
}

// pairwiseResult compares the implementations for one distance. The
// naive/engine pair measures the dense all-pairs job (comparable
// across benchmark generations); the prefilter pair measures the
// thresholded PairsWithin job with the mask prefilter off and on.
type pairwiseResult struct {
	Distance   string       `json:"distance"`
	Signatures int          `json:"signatures"`
	Pairs      int          `json:"pairs"`
	Kernel     string       `json:"kernel"`
	Naive      pairwiseSide `json:"naive"`
	Engine     pairwiseSide `json:"engine"`
	// EngineKernel is the row-kernel hot loop alone: Rows over a
	// prebuilt SetView, excluding view construction and the result
	// accumulation both other sides share. This is the sustained
	// single-core pairs/sec the SoA kernels deliver in steady state
	// (the store and router reuse views across queries).
	EngineKernel pairwiseSide `json:"engine_kernel"`
	Speedup      float64      `json:"speedup"`
	Identical    bool         `json:"identical"`

	Threshold        float64       `json:"threshold,omitempty"`
	ThresholdPairs   int           `json:"threshold_pairs,omitempty"`
	PrefilterOff     *pairwiseSide `json:"prefilter_off,omitempty"`
	PrefilterOn      *pairwiseSide `json:"prefilter_on,omitempty"`
	PrefilterChecked int64         `json:"prefilter_checked,omitempty"`
	PrefilterSkipped int64         `json:"prefilter_skipped,omitempty"`
}

// pairwiseReport is the machine-readable output of -experiment pairwise
// (written to the -json path when set).
type pairwiseReport struct {
	Seed       int64            `json:"seed"`
	Scale      float64          `json:"scale"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []pairwiseResult `json:"results"`
}

// repeatBudget/repeatMax bound the best-of-N timing loop: fn repeats
// until the budget of wall time is spent or repeatMax iterations ran.
const (
	repeatBudget = 150 * time.Millisecond
	repeatMax    = 64
)

// measurePairwise times fn best-of-N: one instrumented run counts heap
// allocations (runtime Mallocs, the quantity testing.B.ReportAllocs
// tracks), then fn repeats within repeatBudget/repeatMax and the
// fastest iteration's wall time is reported. Minimum-of-N is the right
// estimator for a throughput ceiling on a shared machine — scheduler
// preemption and GC pauses only ever add time.
func measurePairwise(fn func()) (int64, uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	best := time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	allocs := after.Mallocs - before.Mallocs
	total := best
	for iters := 1; total < int64(repeatBudget) && iters < repeatMax; iters++ {
		start = time.Now()
		fn()
		ns := time.Since(start).Nanoseconds()
		if ns < best {
			best = ns
		}
		total += ns
	}
	return best, allocs
}

func side(ns int64, allocs uint64, pairs int) pairwiseSide {
	return pairwiseSide{
		TotalNs:     ns,
		NsPerPair:   float64(ns) / float64(pairs),
		PairsPerSec: float64(pairs) / (float64(ns) * 1e-9),
		Allocs:      allocs,
	}
}

// runPairwise benchmarks the all-pairs uniqueness computation — the
// naive per-pair Dist double loop against the distmat engine — over the
// flow dataset's TopTalkers signatures, asserting every engine variant
// produces bit-identical results. With opts.Prefilter it also measures
// the thresholded PairsWithin job with the mask prefilter off and on.
func runPairwise(e *experiments.Env, seed int64, scale float64, opts pairwiseOpts, out io.Writer, jsonPath string) error {
	set, err := e.Sigs(experiments.FlowData, core.TopTalkers{}, 0)
	if err != nil {
		return err
	}
	n := set.Len()
	if n < 2 {
		return fmt.Errorf("pairwise: need at least 2 signatures, have %d", n)
	}
	pairs := n * (n - 1)
	kernel := "soa-scatter"
	if !opts.SoA {
		kernel = "match-fold"
	}
	report := pairwiseReport{
		Seed:       seed,
		Scale:      scale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, d := range core.ExtendedDistances() {
		naive := func() stats.Summary {
			var acc stats.Accumulator
			for i := range set.Sigs {
				for j := range set.Sigs {
					if j == i {
						continue
					}
					acc.Add(d.Dist(set.Sigs[i], set.Sigs[j]))
				}
			}
			return acc.Summarize()
		}
		engine := func() (stats.Summary, error) {
			eng, ok := distmat.NewEngine(set, set, d, 0)
			if !ok {
				return stats.Summary{}, fmt.Errorf("pairwise: no engine for %s", d.Name())
			}
			eng.SetScatter(opts.SoA)
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			var acc stats.Accumulator
			eng.Rows(idx, func(t int, row []float64) {
				for j, dist := range row {
					if j == t {
						continue
					}
					acc.Add(dist)
				}
			})
			return acc.Summarize(), nil
		}

		var naiveSum, engineSum stats.Summary
		var engineErr error
		naiveNs, naiveAllocs := measurePairwise(func() { naiveSum = naive() })
		engineNs, engineAllocs := measurePairwise(func() { engineSum, engineErr = engine() })
		if engineErr != nil {
			return engineErr
		}

		// The kernel side: same rows job on a prebuilt engine, with a
		// minimal consumer — steady-state row throughput, one core.
		keng, ok := distmat.NewEngine(set, set, d, 1)
		if !ok {
			return fmt.Errorf("pairwise: no engine for %s", d.Name())
		}
		keng.SetScatter(opts.SoA)
		idx := make([]int, n)
		for i := range idx {
			idx[i] = i
		}
		var sink float64
		kernelNs, kernelAllocs := measurePairwise(func() {
			keng.Rows(idx, func(t int, row []float64) { sink += row[t] })
		})
		if math.IsNaN(sink) {
			return fmt.Errorf("pairwise: kernel produced NaN")
		}

		res := pairwiseResult{
			Distance:     d.Name(),
			Signatures:   n,
			Pairs:        pairs,
			Kernel:       kernel,
			Naive:        side(naiveNs, naiveAllocs, pairs),
			Engine:       side(engineNs, engineAllocs, pairs),
			EngineKernel: side(kernelNs, kernelAllocs, pairs),
			Speedup:      float64(naiveNs) / float64(engineNs),
			Identical:    naiveSum == engineSum,
		}

		if opts.Prefilter {
			if err := measureThresholded(set, d, opts, &res); err != nil {
				return err
			}
		}
		if !res.Identical {
			return fmt.Errorf("pairwise: %s engine diverges from naive (identical: false)", d.Name())
		}
		report.Results = append(report.Results, res)
	}

	fmt.Fprintf(out, "Pairwise uniqueness: %d signatures, %d ordered pairs, GOMAXPROCS=%d, kernel=%s\n",
		n, pairs, report.GoMaxProcs, kernel)
	fmt.Fprintf(out, "%-10s %14s %14s %14s %11s %9s %12s %12s\n",
		"distance", "naive ns/pair", "engine ns/pair", "kernel ns/pair", "kernel Mp/s", "speedup", "naive allocs", "eng allocs")
	for _, r := range report.Results {
		fmt.Fprintf(out, "%-10s %14.1f %14.1f %14.1f %11.1f %8.2fx %12d %12d\n",
			r.Distance, r.Naive.NsPerPair, r.Engine.NsPerPair,
			r.EngineKernel.NsPerPair, r.EngineKernel.PairsPerSec/1e6, r.Speedup,
			r.Naive.Allocs, r.Engine.Allocs)
	}
	if opts.Prefilter {
		fmt.Fprintf(out, "\nThresholded PairsWithin(%.2f): mask prefilter off vs on\n", opts.Threshold)
		fmt.Fprintf(out, "%-10s %12s %12s %9s %10s %10s\n",
			"distance", "off ns/pair", "on ns/pair", "speedup", "checked", "skipped")
		for _, r := range report.Results {
			if r.PrefilterOff == nil || r.PrefilterOn == nil {
				continue
			}
			fmt.Fprintf(out, "%-10s %12.1f %12.1f %8.2fx %10d %10d\n",
				r.Distance, r.PrefilterOff.NsPerPair, r.PrefilterOn.NsPerPair,
				float64(r.PrefilterOff.TotalNs)/float64(r.PrefilterOn.TotalNs),
				r.PrefilterChecked, r.PrefilterSkipped)
		}
	}

	if opts.Baseline != "" {
		if err := diffBaseline(opts.Baseline, report, out); err != nil {
			return err
		}
	}
	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(jsonPath, blob, 0o644); err != nil {
			return fmt.Errorf("pairwise: writing %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}

// measureThresholded runs PairsWithin(threshold) with the prefilter off
// and on, asserts both lists bit-identical to a naive thresholded scan,
// and records the sides plus the prefilter's checked/skipped tallies.
func measureThresholded(set *core.SignatureSet, d core.Distance, opts pairwiseOpts, res *pairwiseResult) error {
	var naive []distmat.Pair
	for i := 0; i < set.Len(); i++ {
		for j := i + 1; j < set.Len(); j++ {
			a, b := set.Sigs[i], set.Sigs[j]
			if len(a.Nodes) == 0 || len(b.Nodes) == 0 {
				continue
			}
			if dist := d.Dist(a, b); dist <= opts.Threshold {
				naive = append(naive, distmat.Pair{I: i, J: j, Dist: dist})
			}
		}
	}

	newEng := func(prefilter bool) (*distmat.Engine, error) {
		eng, ok := distmat.NewEngine(set, set, d, 0)
		if !ok {
			return nil, fmt.Errorf("pairwise: no engine for %s", d.Name())
		}
		eng.SetScatter(opts.SoA)
		eng.SetPrefilter(prefilter)
		return eng, nil
	}
	run := func(prefilter bool) ([]distmat.Pair, pairwiseSide, error) {
		var got []distmat.Pair
		var runErr error
		ns, allocs := measurePairwise(func() {
			eng, err := newEng(prefilter)
			if err != nil {
				runErr = err
				return
			}
			got = eng.PairsWithin(opts.Threshold)
		})
		// The scanned pair population is the i<j half-matrix.
		return got, side(ns, allocs, res.Pairs/2), runErr
	}

	off, offSide, err := run(false)
	if err != nil {
		return err
	}
	on, onSide, err := run(true)
	if err != nil {
		return err
	}

	// One untimed instrumented run collects the per-job checked/skipped
	// tallies (the timed loop above repeats, which would inflate them).
	reg := obs.NewRegistry()
	m := distmat.Metrics{
		PrefilterChecked: reg.Counter("prefilter_checked", "candidates tested against the mask bound"),
		PrefilterSkipped: reg.Counter("prefilter_skipped", "candidates rejected by the mask bound"),
	}
	ceng, err := newEng(true)
	if err != nil {
		return err
	}
	ceng.SetMetrics(m)
	ceng.PairsWithin(opts.Threshold)

	same := func(a, b []distmat.Pair) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i].I != b[i].I || a[i].J != b[i].J ||
				math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
				return false
			}
		}
		return true
	}
	res.Threshold = opts.Threshold
	res.ThresholdPairs = len(naive)
	res.PrefilterOff = &offSide
	res.PrefilterOn = &onSide
	res.PrefilterChecked = m.PrefilterChecked.Value()
	res.PrefilterSkipped = m.PrefilterSkipped.Value()
	res.Identical = res.Identical && same(naive, off) && same(naive, on)
	return nil
}

// diffBaseline compares engine throughput against a committed report
// and prints benchstat-style deltas, warning on >20% regressions. The
// baseline's engine side may predate the kernel/prefilter fields; only
// the dense engine pairs/sec is compared.
func diffBaseline(path string, report pairwiseReport, out io.Writer) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("pairwise: reading baseline %s: %w", path, err)
	}
	var base pairwiseReport
	if err := json.Unmarshal(blob, &base); err != nil {
		return fmt.Errorf("pairwise: parsing baseline %s: %w", path, err)
	}
	type sides struct{ engine, kernel float64 }
	old := make(map[string]sides, len(base.Results))
	for _, r := range base.Results {
		old[r.Distance] = sides{r.Engine.PairsPerSec, r.EngineKernel.PairsPerSec}
	}
	fmt.Fprintf(out, "\nBaseline delta vs %s\n", path)
	warned := 0
	diff := func(name string, was, now float64) {
		if was <= 0 {
			return
		}
		delta := (now - was) / was * 100
		mark := ""
		if delta < -20 {
			mark = "  WARN: >20% regression"
			warned++
		}
		fmt.Fprintf(out, "%-18s %8.1fM -> %8.1fM pairs/sec  %+6.1f%%%s\n",
			name, was/1e6, now/1e6, delta, mark)
	}
	for _, r := range report.Results {
		was, ok := old[r.Distance]
		if !ok {
			continue
		}
		diff(r.Distance, was.engine, r.Engine.PairsPerSec)
		diff(r.Distance+" (kernel)", was.kernel, r.EngineKernel.PairsPerSec)
	}
	if warned > 0 {
		fmt.Fprintf(out, "pairwise: %d distance(s) regressed >20%% vs %s\n", warned, path)
	}
	return nil
}
