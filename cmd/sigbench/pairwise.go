package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"graphsig/internal/core"
	"graphsig/internal/distmat"
	"graphsig/internal/experiments"
	"graphsig/internal/stats"
)

// pairwiseSide is one measured implementation (naive or engine) of the
// all-pairs uniqueness computation.
type pairwiseSide struct {
	TotalNs     int64   `json:"total_ns"`
	NsPerPair   float64 `json:"ns_per_pair"`
	PairsPerSec float64 `json:"pairs_per_sec"`
	Allocs      uint64  `json:"allocs"`
}

// pairwiseResult compares the two implementations for one distance.
type pairwiseResult struct {
	Distance   string       `json:"distance"`
	Signatures int          `json:"signatures"`
	Pairs      int          `json:"pairs"`
	Naive      pairwiseSide `json:"naive"`
	Engine     pairwiseSide `json:"engine"`
	Speedup    float64      `json:"speedup"`
	Identical  bool         `json:"identical"`
}

// pairwiseReport is the machine-readable output of -experiment pairwise
// (written to the -json path when set).
type pairwiseReport struct {
	Seed       int64            `json:"seed"`
	Scale      float64          `json:"scale"`
	GoMaxProcs int              `json:"gomaxprocs"`
	Results    []pairwiseResult `json:"results"`
}

// measurePairwise runs fn once and reports wall time plus the heap
// allocation count delta (runtime Mallocs), the same quantity
// testing.B.ReportAllocs tracks.
func measurePairwise(fn func()) (int64, uint64) {
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	start := time.Now()
	fn()
	elapsed := time.Since(start).Nanoseconds()
	runtime.ReadMemStats(&after)
	return elapsed, after.Mallocs - before.Mallocs
}

// runPairwise benchmarks the all-pairs uniqueness computation — the
// naive per-pair Dist double loop against the distmat engine — over the
// flow dataset's TopTalkers signatures, asserting the two produce
// bit-identical summaries.
func runPairwise(e *experiments.Env, seed int64, scale float64, out io.Writer, jsonPath string) error {
	set, err := e.Sigs(experiments.FlowData, core.TopTalkers{}, 0)
	if err != nil {
		return err
	}
	n := set.Len()
	if n < 2 {
		return fmt.Errorf("pairwise: need at least 2 signatures, have %d", n)
	}
	pairs := n * (n - 1)
	report := pairwiseReport{
		Seed:       seed,
		Scale:      scale,
		GoMaxProcs: runtime.GOMAXPROCS(0),
	}
	for _, d := range core.ExtendedDistances() {
		naive := func() stats.Summary {
			var acc stats.Accumulator
			for i := range set.Sigs {
				for j := range set.Sigs {
					if j == i {
						continue
					}
					acc.Add(d.Dist(set.Sigs[i], set.Sigs[j]))
				}
			}
			return acc.Summarize()
		}
		engine := func() (stats.Summary, error) {
			eng, ok := distmat.NewEngine(set, set, d, 0)
			if !ok {
				return stats.Summary{}, fmt.Errorf("pairwise: no engine for %s", d.Name())
			}
			idx := make([]int, n)
			for i := range idx {
				idx[i] = i
			}
			var acc stats.Accumulator
			eng.Rows(idx, func(t int, row []float64) {
				for j, dist := range row {
					if j == t {
						continue
					}
					acc.Add(dist)
				}
			})
			return acc.Summarize(), nil
		}

		var naiveSum, engineSum stats.Summary
		var engineErr error
		naiveNs, naiveAllocs := measurePairwise(func() { naiveSum = naive() })
		engineNs, engineAllocs := measurePairwise(func() { engineSum, engineErr = engine() })
		if engineErr != nil {
			return engineErr
		}
		res := pairwiseResult{
			Distance:   d.Name(),
			Signatures: n,
			Pairs:      pairs,
			Naive: pairwiseSide{
				TotalNs:     naiveNs,
				NsPerPair:   float64(naiveNs) / float64(pairs),
				PairsPerSec: float64(pairs) / (float64(naiveNs) * 1e-9),
				Allocs:      naiveAllocs,
			},
			Engine: pairwiseSide{
				TotalNs:     engineNs,
				NsPerPair:   float64(engineNs) / float64(pairs),
				PairsPerSec: float64(pairs) / (float64(engineNs) * 1e-9),
				Allocs:      engineAllocs,
			},
			Speedup:   float64(naiveNs) / float64(engineNs),
			Identical: naiveSum == engineSum,
		}
		if !res.Identical {
			return fmt.Errorf("pairwise: %s engine summary diverges from naive: %v vs %v",
				d.Name(), engineSum, naiveSum)
		}
		report.Results = append(report.Results, res)
	}

	fmt.Fprintf(out, "Pairwise uniqueness: %d signatures, %d ordered pairs, GOMAXPROCS=%d\n",
		n, pairs, report.GoMaxProcs)
	fmt.Fprintf(out, "%-10s %14s %14s %9s %12s %12s\n",
		"distance", "naive ns/pair", "engine ns/pair", "speedup", "naive allocs", "eng allocs")
	for _, r := range report.Results {
		fmt.Fprintf(out, "%-10s %14.1f %14.1f %8.2fx %12d %12d\n",
			r.Distance, r.Naive.NsPerPair, r.Engine.NsPerPair, r.Speedup,
			r.Naive.Allocs, r.Engine.Allocs)
	}

	if jsonPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(jsonPath, blob, 0o644); err != nil {
			return fmt.Errorf("pairwise: writing %s: %w", jsonPath, err)
		}
		fmt.Fprintf(out, "wrote %s\n", jsonPath)
	}
	return nil
}
