// Command sigbench regenerates the paper's evaluation on the synthetic
// datasets: every table (I–IV), every figure (1–6) and the extension
// ablations, printed as text tables.
//
// Usage:
//
//	sigbench [-seed N] [-scale F] [-experiment NAME] [-json PATH]
//	         [-cpuprofile PATH] [-memprofile PATH]
//
// With no -experiment it runs the full suite (-all behaviour). NAME may
// be one of: fig1 fig2 fig3a fig3b fig4 fig5 fig6 tables ablations
// pairwise. -json writes the experiment's machine-readable report (only
// the pairwise experiment emits one); -cpuprofile/-memprofile write
// pprof profiles covering the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"graphsig/internal/experiments"
	"graphsig/internal/sketch"
)

func main() {
	seed := flag.Int64("seed", 42, "root random seed")
	scale := flag.Float64("scale", 1.0, "dataset scale factor in (0,1]")
	name := flag.String("experiment", "", "run a single experiment (fig1..fig6, tables, ablations, pairwise); empty = all")
	jsonPath := flag.String("json", "", "write the experiment's machine-readable report to this path (pairwise only)")
	soa := flag.Bool("soa", true, "pairwise: use the scatter SoA row kernels (false A/Bs the match-list folds)")
	prefilter := flag.Bool("prefilter", true, "pairwise: measure the thresholded sweep with the mask prefilter off and on")
	threshold := flag.Float64("threshold", 0.5, "pairwise: maxDist of the thresholded prefilter sweep")
	baseline := flag.String("baseline", "", "pairwise: diff engine pairs/sec against this committed report, warn on >20% regressions")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this path")
	memProfile := flag.String("memprofile", "", "write a heap profile to this path")
	flag.Parse()

	popts := pairwiseOpts{SoA: *soa, Prefilter: *prefilter, Threshold: *threshold, Baseline: *baseline}
	if err := profiledRun(*seed, *scale, *name, *jsonPath, popts, *cpuProfile, *memProfile); err != nil {
		fmt.Fprintln(os.Stderr, "sigbench:", err)
		os.Exit(1)
	}
}

// profiledRun wraps run with optional pprof capture so the profiles are
// flushed even when the experiment fails.
func profiledRun(seed int64, scale float64, name, jsonPath string, popts pairwiseOpts, cpuProfile, memProfile string) error {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			return err
		}
		defer pprof.StopCPUProfile()
	}
	if err := run(seed, scale, name, jsonPath, popts); err != nil {
		return err
	}
	if memProfile != "" {
		f, err := os.Create(memProfile)
		if err != nil {
			return err
		}
		defer f.Close()
		runtime.GC()
		if err := pprof.WriteHeapProfile(f); err != nil {
			return err
		}
	}
	return nil
}

func run(seed int64, scale float64, name, jsonPath string, popts pairwiseOpts) error {
	ds, err := experiments.LoadScaled(seed, scale)
	if err != nil {
		return err
	}
	e := experiments.NewEnv(ds, seed)
	out := os.Stdout

	switch name {
	case "":
		return experiments.RunAll(out, e)
	case "tables":
		for _, t := range []*experiments.PropertyTable{
			experiments.TableI(), experiments.TableII(), experiments.TableIII(),
		} {
			fmt.Fprintln(out, t.Format())
		}
		t4, err := experiments.TableIVMeasured(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, t4.Format())
		return nil
	case "fig1":
		rows, err := experiments.Figure1(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatFigure1(rows))
		return nil
	case "fig2":
		series, err := experiments.Figure2(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatFigure2(series))
		return nil
	case "fig3a":
		m, err := experiments.Figure3a(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, m.Format())
		return nil
	case "fig3b":
		m, err := experiments.Figure3b(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, m.Format())
		return nil
	case "fig4":
		rows, err := experiments.Figure4(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatFigure4(rows))
		return nil
	case "fig5":
		rows, err := experiments.Figure5(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatFigure5(rows))
		return nil
	case "fig6":
		rows, err := experiments.Figure6(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatFigure6(rows))
		return nil
	case "significance":
		rows, err := experiments.SchemeSignificance(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatSignificance(rows))
		return nil
	case "blend":
		rows, err := experiments.BlendAblation(e, []float64{0, 0.25, 0.5, 0.75, 1})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatBlend(rows))
		return nil
	case "horizon":
		rows, err := experiments.PersistenceHorizon(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatHorizon(rows))
		return nil
	case "hops":
		rows, diameter, err := experiments.HopConvergence(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatHopConvergence(rows, diameter))
		return nil
	case "deanon":
		rows, err := experiments.DeAnonymization(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatDeanon(rows))
		return nil
	case "phone":
		rows, err := experiments.TelephoneRetrieval(seed, scale)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatPhone(rows))
		return nil
	case "prune":
		rows, err := experiments.PruneAblation(e, []float64{1, 2, 3, 5})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatPrune(rows))
		return nil
	case "anomaly":
		rows, err := experiments.AnomalyDetection(e)
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatAnomaly(rows))
		return nil
	case "pairwise":
		return runPairwise(e, seed, scale, popts, out, jsonPath)
	case "ablations":
		streaming, err := experiments.StreamingAblation(e, sketch.StreamConfig{Seed: uint64(seed)})
		if err != nil {
			return err
		}
		lshRow, err := experiments.LSHAblation(e, 16, 2)
		if err != nil {
			return err
		}
		decay, err := experiments.DecayAblation(e, []float64{0, 0.25, 0.5, 0.75})
		if err != nil {
			return err
		}
		direction, err := experiments.DirectionAblation(e)
		if err != nil {
			return err
		}
		utScaling, err := experiments.UTScalingAblation(e)
		if err != nil {
			return err
		}
		ks, err := experiments.KSweepAblation(e, []int{5, 10, 20, 40})
		if err != nil {
			return err
		}
		fmt.Fprintln(out, experiments.FormatAblations(streaming, lshRow, decay, direction, utScaling, ks))
		return nil
	default:
		return fmt.Errorf("unknown experiment %q", name)
	}
}
