package main

import (
	"strings"
	"testing"
	"time"

	"graphsig/internal/store"
)

func defaultOptions() options {
	var o options
	o.addr = "127.0.0.1:0"
	o.window = 5 * 24 * time.Hour
	o.localPrefix = "10."
	o.scheme = "tt"
	o.k = 10
	o.tcpOnly = true
	o.distance = "jaccard"
	o.capacity = 16
	o.watchDist = 0.5
	o.snapInterval = 20 * time.Millisecond
	o.maxInFlight = 4
	o.lshSeed = 1
	o.sketchWidth = 1024
	o.sketchDepth = 4
	o.sketchCand = 64
	o.replaySeed = 1
	o.replayHosts = 20
	o.replayWindows = 2
	o.replayBatch = 500
	return o
}

func TestServerConfigValidation(t *testing.T) {
	o := defaultOptions()
	if _, err := serverConfig(o); err != nil {
		t.Fatal(err)
	}
	o.distance = "no-such-distance"
	if _, err := serverConfig(o); err == nil {
		t.Fatal("unknown distance accepted")
	}
	o = defaultOptions()
	o.origin = "not-a-time"
	if _, err := serverConfig(o); err == nil {
		t.Fatal("bad origin accepted")
	}
	o.origin = "2026-03-02T00:00:00Z"
	cfg, err := serverConfig(o)
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Stream.Origin.IsZero() {
		t.Fatal("origin not applied")
	}
}

// TestReplayRunExits drives the daemon end to end: run() listens on an
// ephemeral port, replays a small synthetic workload against itself
// over HTTP, snapshots on shutdown, and exits without a signal.
func TestReplayRunExits(t *testing.T) {
	o := defaultOptions()
	o.replay = true
	o.snapshot = t.TempDir()
	var buf strings.Builder
	if err := run(o, &buf); err != nil {
		t.Fatalf("run: %v\noutput:\n%s", err, buf.String())
	}
	out := buf.String()
	for _, want := range []string{"serving on http://127.0.0.1:", "replay: ingested", "records/s", "snapshot saved"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if !store.SnapshotExists(o.snapshot) {
		t.Fatal("no snapshot written on shutdown")
	}
	// The final window is flushed at shutdown, so the snapshot holds
	// every replay window; a fresh load must see them.
	s, err := store.Load(o.snapshot, store.Config{Capacity: o.capacity})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != o.replayWindows {
		t.Fatalf("snapshot holds %d windows, want %d", s.Len(), o.replayWindows)
	}
}
