// Command sigserverd is the online signature service: it ingests flow
// records over HTTP through the §VI streaming pipeline, archives each
// completed window's signatures in a bounded in-memory store, and
// serves history, nearest-signature search, watchlist and anomaly
// queries against the archive.
//
//	sigserverd -addr :8787 -window 120h -scheme tt -k 10 \
//	    -snapshot /var/lib/sigserverd
//
// Endpoints (all JSON):
//
//	POST /v1/flows              batch flow ingestion
//	GET  /v1/signatures/{label} per-label signature history
//	POST /v1/search             top-k nearest signatures
//	POST /v1/watchlist          archive a label under an individual
//	GET  /v1/watchlist/hits     recorded reappearance hits
//	GET  /v1/anomalies          behaviour changes, last two windows
//	GET  /healthz               liveness
//	GET  /metrics               expvar-style counters
//
// On SIGINT/SIGTERM the daemon drains HTTP, flushes the partial
// window, and — when -snapshot is set — saves the store so a restart
// resumes with its archive.
//
// With -replay the daemon feeds a synthetic datagen enterprise
// workload to itself through the real HTTP ingest path, prints a
// throughput summary and the final counters, and exits: a self-
// benchmark of the full serving stack.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"sync"
	"syscall"
	"time"

	"graphsig/internal/cluster"
	"graphsig/internal/core"
	"graphsig/internal/datagen"
	"graphsig/internal/netflow"
	"graphsig/internal/obs"
	"graphsig/internal/server"
	"graphsig/internal/sketch"
	"graphsig/internal/stream"
)

type options struct {
	addr         string
	window       time.Duration
	origin       string
	localPrefix  string
	scheme       string
	k            int
	tcpOnly      bool
	distance     string
	capacity     int
	watchDist    float64
	snapshot     string
	segments     string
	segRetain    int
	snapInterval time.Duration
	noWAL        bool
	maxInFlight  int
	lshBands     int
	lshRows      int
	lshSeed      uint64
	sketchWidth  int
	sketchDepth  int
	sketchCand   int
	debugAddr    string
	slowOp       time.Duration

	shardIndex int
	shardCount int
	vnodes     int
	replicate  bool
	walRetain  int
	follow     string
	followPoll time.Duration

	replay        bool
	replaySeed    int64
	replayHosts   int
	replayWindows int
	replayBatch   int
}

func main() {
	var o options
	fs := flag.NewFlagSet("sigserverd", flag.ExitOnError)
	fs.StringVar(&o.addr, "addr", "127.0.0.1:8787", "listen address")
	fs.DurationVar(&o.window, "window", 5*24*time.Hour, "aggregation window size")
	fs.StringVar(&o.origin, "origin", "", "window origin (RFC3339; empty = first record)")
	fs.StringVar(&o.localPrefix, "local-prefix", "10.", "label prefix marking local hosts")
	fs.StringVar(&o.scheme, "scheme", "tt", "streaming signature scheme (tt or ut)")
	fs.IntVar(&o.k, "k", 10, "signature length")
	fs.BoolVar(&o.tcpOnly, "tcp-only", true, "drop non-TCP records")
	fs.StringVar(&o.distance, "distance", "jaccard", "default distance (jaccard, dice, sdice, shel, ...)")
	fs.IntVar(&o.capacity, "capacity", 16, "windows retained in the store")
	fs.Float64Var(&o.watchDist, "watch-maxdist", 0.5, "watchlist screening threshold")
	fs.StringVar(&o.snapshot, "snapshot", "", "snapshot directory (empty = no persistence)")
	fs.StringVar(&o.segments, "segment-dir", "", "cold-tier segment directory: ring evictions compact into immutable on-disk segments instead of being dropped (empty = bounded in-memory archive only)")
	fs.IntVar(&o.segRetain, "segment-retain", 0, "segment files kept on disk; oldest pruned beyond this (0 = keep all)")
	fs.DurationVar(&o.snapInterval, "snapshot-interval", time.Minute, "periodic background snapshot interval (0 = only at window close/shutdown)")
	fs.BoolVar(&o.noWAL, "no-wal", false, "disable the write-ahead log beside the snapshot directory")
	fs.IntVar(&o.maxInFlight, "max-inflight", 8, "concurrent ingest batches before shedding with 429 (0 = unlimited)")
	fs.IntVar(&o.lshBands, "lsh-bands", 0, "LSH bands for search prefiltering (0 = exact scans)")
	fs.IntVar(&o.lshRows, "lsh-rows", 0, "LSH rows per band")
	fs.Uint64Var(&o.lshSeed, "lsh-seed", 1, "LSH hash seed")
	fs.IntVar(&o.sketchWidth, "sketch-width", 4096, "Count-Min width per source")
	fs.IntVar(&o.sketchDepth, "sketch-depth", 5, "Count-Min depth per source")
	fs.IntVar(&o.sketchCand, "sketch-candidates", 256, "tracked heavy neighbours per source")
	fs.StringVar(&o.debugAddr, "debug-addr", "", "separate listen address for net/http/pprof (empty = disabled)")
	fs.DurationVar(&o.slowOp, "slow-op", 500*time.Millisecond, "traced spans over this duration log a slow-operation warning (0 = disabled)")
	fs.IntVar(&o.shardIndex, "shard-index", 0, "this node's shard index in a cluster (with -shard-count)")
	fs.IntVar(&o.shardCount, "shard-count", 0, "total shards in the cluster (0 = single-node)")
	fs.IntVar(&o.vnodes, "vnodes", 0, "virtual nodes per shard on the hash ring (0 = default; must match the router)")
	fs.BoolVar(&o.replicate, "replicate", false, "serve the WAL to read replicas over /v1/replication (requires -snapshot)")
	fs.IntVar(&o.walRetain, "wal-retain", server.DefaultReplicaRetain, "sealed WAL segments kept for replica catch-up (-1 = all)")
	fs.StringVar(&o.follow, "follow", "", "run as a read replica tailing this primary (comma-separated seed addresses)")
	fs.DurationVar(&o.followPoll, "follow-poll", 0, "replication poll interval when caught up (0 = default)")
	fs.BoolVar(&o.replay, "replay", false, "self-benchmark: replay a synthetic workload over HTTP, then exit")
	fs.Int64Var(&o.replaySeed, "replay-seed", 1, "replay workload seed")
	fs.IntVar(&o.replayHosts, "replay-hosts", 300, "replay local hosts")
	fs.IntVar(&o.replayWindows, "replay-windows", 6, "replay windows")
	fs.IntVar(&o.replayBatch, "replay-batch", 2000, "replay records per POST")
	_ = fs.Parse(os.Args[1:])

	if err := run(o, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "sigserverd:", err)
		os.Exit(1)
	}
}

func serverConfig(o options) (server.Config, error) {
	d, ok := core.DistanceByName(o.distance)
	if !ok {
		return server.Config{}, fmt.Errorf("unknown distance %q", o.distance)
	}
	scfg := stream.Config{
		WindowSize: o.window,
		Classify:   netflow.PrefixClassifier(o.localPrefix),
		TCPOnly:    o.tcpOnly,
		K:          o.k,
		Scheme:     o.scheme,
		Sketch: sketch.StreamConfig{
			Width:      o.sketchWidth,
			Depth:      o.sketchDepth,
			Candidates: o.sketchCand,
			Seed:       1,
		},
	}
	if o.origin != "" {
		t, err := time.Parse(time.RFC3339, o.origin)
		if err != nil {
			return server.Config{}, fmt.Errorf("bad -origin: %w", err)
		}
		scfg.Origin = t
	}
	node, err := nodeIdentity(o)
	if err != nil {
		return server.Config{}, err
	}
	return server.Config{
		Stream:        scfg,
		StoreCapacity: o.capacity,
		Distance:      d,
		WatchMaxDist:  &o.watchDist,
		LSHBands:      o.lshBands,
		LSHRows:       o.lshRows,
		LSHSeed:       o.lshSeed,
		SnapshotDir:   o.snapshot,
		SegmentDir:    o.segments,
		SegmentRetain: o.segRetain,
		DisableWAL:    o.noWAL,
		MaxInFlight:   o.maxInFlight,
		SlowOp:        o.slowOp,
		Node:          node,
		Replicate:     o.replicate,
		ReplicaRetain: o.walRetain,
	}, nil
}

// nodeIdentity derives this node's cluster identity for /readyz and
// metric labels. The ring epoch comes from the same ring construction
// the router uses, so a router/shard membership mismatch is visible by
// comparing epochs.
func nodeIdentity(o options) (*server.Identity, error) {
	role := "single"
	if o.replicate {
		role = "primary"
	}
	id := &server.Identity{Role: role, Shard: o.shardIndex}
	if o.shardCount > 0 {
		if o.shardIndex < 0 || o.shardIndex >= o.shardCount {
			return nil, fmt.Errorf("-shard-index %d out of range for -shard-count %d", o.shardIndex, o.shardCount)
		}
		ring, err := cluster.NewRing(o.shardCount, o.vnodes)
		if err != nil {
			return nil, err
		}
		id.Shards = o.shardCount
		id.RingEpoch = ring.Epoch()
	}
	return id, nil
}

func run(o options, out io.Writer) error {
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	// All operational output is structured: one slog line per event,
	// with the server's slow-operation warnings (trace IDs included)
	// interleaved on the same handler.
	logger := slog.New(slog.NewTextHandler(out, nil))

	if o.follow != "" {
		return runFollower(ctx, o, logger)
	}

	cfg, err := serverConfig(o)
	if err != nil {
		return err
	}
	cfg.Logger = logger
	if o.replay {
		// Replay feeds records anchored at the generator's origin; pin
		// the pipeline to it so window indices are predictable.
		gcfg := replayConfig(o)
		cfg.Stream.Origin = gcfg.Origin
		cfg.Stream.WindowSize = gcfg.WindowLength
	}
	srv, err := server.New(cfg)
	if err != nil {
		return err
	}
	if lo, hi, ok := srv.Store().WindowRange(); ok {
		logger.Info("sigserverd: snapshot restored", "oldest_window", lo, "newest_window", hi)
	}
	if rec := srv.Recovery(); rec.WALRecords > 0 {
		logger.Info("sigserverd: WAL replayed",
			"records", rec.WALRecords, "rejected", rec.WALRejected,
			"torn_bytes", rec.WALTornBytes, "windows_closed", rec.WALWindowsClosed)
	}
	if rec := srv.Recovery(); rec.SegmentsAttached > 0 || len(rec.SegmentsQuarantined) > 0 {
		logger.Info("sigserverd: segment tier attached",
			"segments", rec.SegmentsAttached, "cold_windows", rec.SegmentWindows,
			"quarantined", len(rec.SegmentsQuarantined))
	}

	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}

	if o.debugAddr != "" {
		dln, err := net.Listen("tcp", o.debugAddr)
		if err != nil {
			return err
		}
		defer dln.Close()
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() { _ = http.Serve(dln, dmux) }()
		logger.Info("sigserverd: pprof debug server on http://" + dln.Addr().String() + "/debug/pprof/")
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		// Slowloris hardening: a client must finish its headers
		// promptly and cannot send unbounded ones. Body size is
		// bounded per handler via http.MaxBytesReader.
		ReadHeaderTimeout: 10 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	logger.Info(fmt.Sprintf("sigserverd: serving on http://%s", ln.Addr()),
		"window", cfg.Stream.WindowSize, "scheme", cfg.Stream.Scheme, "k", cfg.Stream.K)

	// Startup readiness probe through the real listener: the same check
	// a load balancer would run, logged so a misconfigured boot (e.g.
	// durability requested but WAL unopenable) is visible immediately.
	if ready, err := server.NewClient("http://" + ln.Addr().String()).Ready(); err != nil {
		logger.Warn("sigserverd: readiness probe failed", "err", err)
	} else {
		logger.Info("sigserverd: ready", "ready", ready.Ready)
	}

	// Periodic background snapshots: archived windows stay durable even
	// without a graceful shutdown (the WAL covers the open window).
	snapDone := make(chan struct{})
	var snapWG sync.WaitGroup
	if o.snapshot != "" && o.snapInterval > 0 {
		snapWG.Add(1)
		go func() {
			defer snapWG.Done()
			tick := time.NewTicker(o.snapInterval)
			defer tick.Stop()
			for {
				select {
				case <-snapDone:
					return
				case <-tick.C:
					if err := srv.Snapshot(); err != nil {
						logger.Warn("sigserverd: periodic snapshot failed", "err", err)
					}
				}
			}
		}()
	}

	if o.replay {
		go func() {
			errc <- replay(o, "http://"+ln.Addr().String(), logger)
		}()
	}

	var runErr error
	select {
	case <-ctx.Done():
		logger.Info("sigserverd: signal received, shutting down")
	case runErr = <-errc:
	}

	close(snapDone)
	snapWG.Wait()
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && runErr == nil {
		runErr = err
	}
	if err := srv.Shutdown(); err != nil && runErr == nil {
		runErr = err
	}
	if o.snapshot != "" {
		logger.Info("sigserverd: snapshot saved to "+o.snapshot, "windows", srv.Store().Len())
	}
	return runErr
}

// runFollower runs the daemon as a WAL-tailing read replica: it builds
// the same pipeline configuration a primary would, but fills it from
// the primary's shipped log instead of client ingest, and serves the
// read-only API.
func runFollower(ctx context.Context, o options, logger *slog.Logger) error {
	cfg, err := serverConfig(o)
	if err != nil {
		return err
	}
	node := &server.Identity{Role: "follower", Shard: o.shardIndex}
	if cfg.Node != nil {
		node.Shards = cfg.Node.Shards
		node.RingEpoch = cfg.Node.RingEpoch
	}
	f, err := cluster.NewFollower(cluster.FollowerConfig{
		Primary:       strings.Split(o.follow, ","),
		Stream:        cfg.Stream,
		StoreCapacity: cfg.StoreCapacity,
		Distance:      cfg.Distance,
		WatchMaxDist:  cfg.WatchMaxDist,
		LSHBands:      cfg.LSHBands,
		LSHRows:       cfg.LSHRows,
		LSHSeed:       cfg.LSHSeed,
		Poll:          o.followPoll,
		// A promoted follower turns -snapshot into its own durability
		// root: it quarantines any stale WAL there and starts logging a
		// fresh generation.
		PromoteDir: o.snapshot,
		// Followers compact evicted windows into their own segment tier;
		// the deterministic segment bytes match the primary's bit for bit.
		SegmentDir:    o.segments,
		SegmentRetain: o.segRetain,
		Node:          node,
		Logger:        logger,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", o.addr)
	if err != nil {
		return err
	}
	hs := &http.Server{
		// FollowerHandler adds GET /v1/follower/status and POST
		// /v1/promote on top of the replica's read API, so an operator or
		// the router's prober can fail this node over.
		Handler:           f.FollowerHandler(),
		ReadHeaderTimeout: 10 * time.Second,
		MaxHeaderBytes:    1 << 20,
	}
	errc := make(chan error, 1)
	go func() {
		if err := hs.Serve(ln); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()
	f.Start()
	logger.Info(fmt.Sprintf("sigserverd: following %s on http://%s", o.follow, ln.Addr()))

	var runErr error
	select {
	case <-ctx.Done():
		logger.Info("sigserverd: signal received, shutting down")
	case runErr = <-errc:
	}
	f.Stop()
	if st := f.Stats(); st.Promoted {
		// The node took writes after promotion; give its WAL and
		// snapshot the same clean shutdown a primary gets.
		if srv := f.Server(); srv != nil {
			if err := srv.Shutdown(); err != nil && runErr == nil {
				runErr = err
			}
		}
		logger.Info("sigserverd: promoted follower stopped", "gen", st.Gen, "applied", st.AppliedRecords)
	} else if st.Fatal != "" && runErr == nil {
		runErr = errors.New(st.Fatal)
	} else {
		logger.Info("sigserverd: follower stopped",
			"gen", f.Stats().Gen, "applied", f.Stats().AppliedRecords, "caught_up", f.Stats().CaughtUp)
	}
	sctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := hs.Shutdown(sctx); err != nil && runErr == nil {
		runErr = err
	}
	return runErr
}

func replayConfig(o options) datagen.EnterpriseConfig {
	gcfg := datagen.DefaultEnterpriseConfig(o.replaySeed)
	gcfg.LocalHosts = o.replayHosts
	gcfg.ExternalHosts = max(8*o.replayHosts, 200)
	gcfg.Windows = o.replayWindows
	gcfg.MultiusageIndividuals = min(gcfg.MultiusageIndividuals, o.replayHosts/15)
	return gcfg
}

// replay generates a synthetic enterprise capture and pushes it through
// the daemon's own HTTP ingest path, reporting end-to-end throughput —
// the serving analogue of the EXPERIMENTS self-benchmarks. It doubles
// as the observability smoke test: the Prometheus rendering of
// /metrics must parse with the expected histogram families present,
// and /v1/traces must have archived the ingest traces.
func replay(o options, base string, logger *slog.Logger) error {
	gcfg := replayConfig(o)
	data, err := datagen.GenerateEnterprise(gcfg)
	if err != nil {
		return err
	}
	c := server.NewClient(base)
	logger.Info(fmt.Sprintf("replay: %d records, %d local hosts, %d windows",
		len(data.Records), gcfg.LocalHosts, gcfg.Windows))

	begin := time.Now()
	accepted, rejected, windows := 0, 0, 0
	for i := 0; i < len(data.Records); i += o.replayBatch {
		end := min(i+o.replayBatch, len(data.Records))
		res, err := c.Ingest(data.Records[i:end])
		if err != nil {
			return err
		}
		accepted += res.Accepted
		rejected += res.Rejected
		windows += res.WindowsClosed
	}
	elapsed := time.Since(begin)
	rate := float64(accepted) / elapsed.Seconds()
	logger.Info(fmt.Sprintf("replay: ingested %d records (%d rejected) in %v — %.0f records/s, %d windows closed",
		accepted, rejected, elapsed.Round(time.Millisecond), rate, windows))

	m, err := c.Metrics()
	if err != nil {
		return err
	}
	for _, k := range []string{"flows_received", "flows_accepted", "windows_closed",
		"http_requests_total", "request_micros_sum", "http_request_p99_micros"} {
		logger.Info(fmt.Sprintf("replay: metric %s = %d", k, m[k]))
	}
	if m["flows_received"] != int64(len(data.Records)) {
		return fmt.Errorf("replay: server received %d of %d records", m["flows_received"], len(data.Records))
	}
	if m["flows_accepted"]+m["flows_dropped"]+m["flows_rejected"] != m["flows_received"] {
		return fmt.Errorf("replay: inconsistent flow counters: %v", m)
	}
	return obsSmoke(c, logger)
}

// obsSmoke validates the observability surface after a replay: the
// Prometheus exposition parses and carries the serving stack's latency
// histograms, and the trace ring holds the replay's ingest traces.
func obsSmoke(c *server.Client, logger *slog.Logger) error {
	text, err := c.MetricsProm()
	if err != nil {
		return err
	}
	families, err := obs.ValidateExposition(strings.NewReader(text))
	if err != nil {
		return fmt.Errorf("replay: invalid Prometheus exposition: %w", err)
	}
	histograms := 0
	for _, typ := range families {
		if typ == "histogram" {
			histograms++
		}
	}
	for _, name := range []string{"http_route_seconds", "wal_fsync_seconds",
		"store_snapshot_save_seconds", "pipeline_window_close_seconds"} {
		if families[name] != "histogram" {
			return fmt.Errorf("replay: prom family %s is %q, want histogram", name, families[name])
		}
	}
	logger.Info("replay: prom exposition valid",
		"families", len(families), "histograms", histograms)

	traces, err := c.Traces(1)
	if err != nil {
		return err
	}
	if traces.Total == 0 || len(traces.Traces) == 0 {
		return fmt.Errorf("replay: no traces archived (total %d)", traces.Total)
	}
	t := traces.Traces[0]
	logger.Info("replay: trace fetched",
		"trace", t.ID, "op", t.Name, "spans", len(t.Spans), "duration_micros", t.DurationMicros)
	return nil
}
