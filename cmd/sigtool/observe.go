package main

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// runObserve polls a running sigserverd's /metrics endpoint and renders
// ingest/request rates and latency quantiles, one line per sample — a
// minimal terminal dashboard over the server's metrics registry. The
// first sample shows absolute counters (there is nothing to rate
// against yet); each later line shows per-second rates over the
// elapsed polling interval.
func runObserve(cfg config, out io.Writer) error {
	if cfg.samples <= 0 {
		return fmt.Errorf("observe: -samples must be positive")
	}
	c := newClient(cfg.addr)
	var prev map[string]int64
	var prevAt time.Time
	for i := 0; i < cfg.samples; i++ {
		if i > 0 {
			time.Sleep(cfg.interval)
		}
		m, err := c.Metrics()
		if err != nil {
			return err
		}
		now := time.Now()
		fmt.Fprint(out, renderObserveLine(m, prev, now.Sub(prevAt)))
		prev, prevAt = m, now
	}
	return nil
}

// renderObserveLine formats one dashboard line from a metrics snapshot
// and (optionally) the previous one.
func renderObserveLine(m, prev map[string]int64, elapsed time.Duration) string {
	var b strings.Builder
	if prev == nil {
		fmt.Fprintf(&b, "observe: flows=%d requests=%d windows=%d errors=%d",
			m["flows_accepted"], m["http_requests_total"], m["windows_closed"], m["http_errors_total"])
	} else {
		secs := elapsed.Seconds()
		if secs <= 0 {
			secs = 1
		}
		rate := func(key string) float64 { return float64(m[key]-prev[key]) / secs }
		fmt.Fprintf(&b, "observe: flows/s=%.0f req/s=%.1f windows=%d errors=%d",
			rate("flows_accepted"), rate("http_requests_total"),
			m["windows_closed"], m["http_errors_total"])
	}
	b.WriteString(renderSearchSuffix(m))
	b.WriteString(renderSegmentSuffix(m))
	b.WriteString(renderClusterSuffix(m))
	fmt.Fprintf(&b, " p50=%dus p90=%dus p99=%dus\n",
		m["http_request_p50_micros"], m["http_request_p90_micros"], m["http_request_p99_micros"])
	return b.String()
}

// renderSearchSuffix surfaces the search path's counters when the node
// has served any: queries (counting each batch slot), batch requests
// with the batch route's average latency, and the mask prefilter's
// skipped/checked tallies. Idle nodes get an empty suffix, keeping the
// basic dashboard line unchanged.
func renderSearchSuffix(m map[string]int64) string {
	queries := m["search_queries"]
	batches := m["batch_searches"]
	checked := m["distmat_prefilter_checked_total"]
	skipped := m["distmat_prefilter_skipped_total"]
	if queries == 0 && batches == 0 && checked == 0 && skipped == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, " searches=%d", queries)
	if batches > 0 {
		fmt.Fprintf(&b, " batches=%d", batches)
		if reqs := m["route_post_v1_search_batch_requests"]; reqs > 0 {
			fmt.Fprintf(&b, " batch_avg=%dus", m["route_post_v1_search_batch_micros_sum"]/reqs)
		}
	}
	if checked > 0 || skipped > 0 {
		fmt.Fprintf(&b, " prefilter_skip=%d/%d", skipped, checked)
	}
	return b.String()
}

// renderSegmentSuffix surfaces the cold tier's health on nodes running
// with a segment directory: segments written and cold windows compacted,
// reads that fell through to disk, and — loudly, since they indicate
// either I/O trouble or corrupt files — compaction errors and
// quarantines. Untiered nodes get an empty suffix.
func renderSegmentSuffix(m map[string]int64) string {
	// Files/windows are gauges of the attached tier's current state, so
	// a freshly restarted node shows its cold horizon immediately; the
	// save/compaction counters only tick on this boot's own evictions.
	files := m["store_segment_files"]
	cold := m["store_segment_windows"]
	loads := m["store_segment_loads"]
	errors := m["store_segment_errors"]
	quarantines := m["store_segment_quarantines"]
	if files == 0 && cold == 0 && loads == 0 && errors == 0 && quarantines == 0 {
		return ""
	}
	var b strings.Builder
	fmt.Fprintf(&b, " segs=%d cold=%d", files, cold)
	if loads > 0 {
		fmt.Fprintf(&b, " seg_reads=%d", loads)
	}
	if pruned := m["store_segment_pruned"]; pruned > 0 {
		fmt.Fprintf(&b, " seg_pruned=%d", pruned)
	}
	if errors > 0 || quarantines > 0 {
		fmt.Fprintf(&b, " seg_errors=%d seg_quarantined=%d", errors, quarantines)
	}
	return b.String()
}

// renderClusterSuffix surfaces the failover health of a router (or a
// replicating primary) when its metrics carry per-shard replication
// state: byte lag and wall-clock staleness of each shard's freshest
// follower, how many reads were answered by followers, and how many
// promotions the prober has issued. Nodes without cluster metrics get
// an empty suffix, so the single-node dashboard line is unchanged.
func renderClusterSuffix(m map[string]int64) string {
	const lagPrefix = "replica_lag_bytes_"
	var shards []string
	for k := range m {
		if strings.HasPrefix(k, lagPrefix) {
			shards = append(shards, strings.TrimPrefix(k, lagPrefix))
		}
	}
	var failoverReads int64
	for k, v := range m {
		if strings.HasPrefix(k, "failover_reads_total_") {
			failoverReads += v
		}
	}
	promotions := m["promotions_total"]
	if len(shards) == 0 && failoverReads == 0 && promotions == 0 {
		return ""
	}
	sort.Strings(shards)
	var b strings.Builder
	for _, s := range shards {
		fmt.Fprintf(&b, " lag[%s]=%dB", s, m[lagPrefix+s])
		if behind := m["replica_behind_seconds_"+s]; behind > 0 {
			fmt.Fprintf(&b, "/%ds", behind)
		}
	}
	if failoverReads > 0 {
		fmt.Fprintf(&b, " failover_reads=%d", failoverReads)
	}
	if promotions > 0 {
		fmt.Fprintf(&b, " promotions=%d", promotions)
	}
	return b.String()
}
