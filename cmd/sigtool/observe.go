package main

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// runObserve polls a running sigserverd's /metrics endpoint and renders
// ingest/request rates and latency quantiles, one line per sample — a
// minimal terminal dashboard over the server's metrics registry. The
// first sample shows absolute counters (there is nothing to rate
// against yet); each later line shows per-second rates over the
// elapsed polling interval.
func runObserve(cfg config, out io.Writer) error {
	if cfg.samples <= 0 {
		return fmt.Errorf("observe: -samples must be positive")
	}
	c := newClient(cfg.addr)
	var prev map[string]int64
	var prevAt time.Time
	for i := 0; i < cfg.samples; i++ {
		if i > 0 {
			time.Sleep(cfg.interval)
		}
		m, err := c.Metrics()
		if err != nil {
			return err
		}
		now := time.Now()
		fmt.Fprint(out, renderObserveLine(m, prev, now.Sub(prevAt)))
		prev, prevAt = m, now
	}
	return nil
}

// renderObserveLine formats one dashboard line from a metrics snapshot
// and (optionally) the previous one.
func renderObserveLine(m, prev map[string]int64, elapsed time.Duration) string {
	var b strings.Builder
	if prev == nil {
		fmt.Fprintf(&b, "observe: flows=%d requests=%d windows=%d errors=%d",
			m["flows_accepted"], m["http_requests_total"], m["windows_closed"], m["http_errors_total"])
	} else {
		secs := elapsed.Seconds()
		if secs <= 0 {
			secs = 1
		}
		rate := func(key string) float64 { return float64(m[key]-prev[key]) / secs }
		fmt.Fprintf(&b, "observe: flows/s=%.0f req/s=%.1f windows=%d errors=%d",
			rate("flows_accepted"), rate("http_requests_total"),
			m["windows_closed"], m["http_errors_total"])
	}
	fmt.Fprintf(&b, " p50=%dus p90=%dus p99=%dus\n",
		m["http_request_p50_micros"], m["http_request_p90_micros"], m["http_request_p99_micros"])
	return b.String()
}
