package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"

	"graphsig/internal/cluster"
)

// runTrace fetches one stitched distributed trace from a router's GET
// /v1/traces/{id} and renders it as an indented tree: one line per
// span, showing which node recorded it, when it started relative to
// the routed call, and how long it took. The slowest child at each
// fan-out — the straggler that bounded that barrier's wall time — is
// highlighted.
func runTrace(cfg config, out io.Writer) error {
	if len(cfg.args) != 1 || cfg.args[0] == "" {
		return fmt.Errorf("trace: usage: sigtool trace -addr ROUTER_URL <trace-id>")
	}
	id := cfg.args[0]
	base := strings.TrimRight(strings.TrimSpace(strings.Split(cfg.addr, ",")[0]), "/")
	resp, err := http.Get(base + "/v1/traces/" + url.PathEscape(id))
	if err != nil {
		return fmt.Errorf("trace: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var apiErr struct {
			Error string `json:"error"`
		}
		_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&apiErr)
		if apiErr.Error != "" {
			return fmt.Errorf("trace: %s", apiErr.Error)
		}
		return fmt.Errorf("trace: %s answered %s", base, resp.Status)
	}
	var st cluster.StitchedTraceResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		return fmt.Errorf("trace: decoding response: %w", err)
	}
	if st.Root == nil {
		return fmt.Errorf("trace: %s did not return a stitched trace (is -addr a router?)", base)
	}

	fmt.Fprintf(out, "trace %s: %d spans across %s (%.3fms)\n",
		st.ID, st.SpanCount, strings.Join(st.Nodes, ", "), float64(st.DurationMicros)/1000)
	for _, m := range st.Missing {
		fmt.Fprintf(out, "  ! unreachable: %s\n", m)
	}
	renderStitchedSpan(out, st.Root, 0)
	return nil
}

// renderStitchedSpan prints one span line and recurses. Offsets are
// relative to the trace root, already clock-skew normalized by the
// router (a remote segment is pinned to the span that spawned it).
func renderStitchedSpan(out io.Writer, n *cluster.StitchedSpan, depth int) {
	marker := ""
	if n.Critical && depth > 0 {
		marker = "  <-- straggler"
	}
	fmt.Fprintf(out, "%s%s [%s] @%dus +%dus%s\n",
		strings.Repeat("  ", depth), n.Name, n.Node, n.OffsetMicros, n.DurationMicros, marker)
	for _, c := range n.Children {
		renderStitchedSpan(out, c, depth+1)
	}
}
