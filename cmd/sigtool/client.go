package main

import (
	"fmt"
	"io"
	"sort"
	"strings"

	"graphsig/internal/server"
)

// newClient builds a client from -addr, which may be a comma-separated
// seed list ("http://a:8787,http://b:8787"); the client rotates to the
// next seed when one stops answering.
func newClient(addr string) *server.Client {
	seeds := strings.Split(addr, ",")
	for i := range seeds {
		seeds[i] = strings.TrimSpace(seeds[i])
	}
	return server.NewClient(seeds[0], seeds[1:]...)
}

// runClient executes one query against a running sigserverd, rendering
// the JSON responses in the same tabular style as the offline
// subcommands. It is the operator's remote counterpart to neighbors/
// screen/anomalies over a live store instead of a flow file.
func runClient(cfg config, out io.Writer) error {
	c := newClient(cfg.addr)
	switch cfg.op {
	case "search":
		if cfg.node == "" {
			return fmt.Errorf("client search needs -node")
		}
		res, err := c.Search(server.SearchRequest{
			Label: cfg.node, K: cfg.top, MaxDist: cfg.maxDist, Distance: cfg.scheme,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "nearest archived signatures to %s (%s):\n", cfg.node, res.Distance)
		for _, h := range res.Hits {
			fmt.Fprintf(out, "  %-18s window=%d dist=%.4f\n", h.Label, h.Window, h.Dist)
		}
		return nil
	case "history":
		if cfg.node == "" {
			return fmt.Errorf("client history needs -node")
		}
		res, err := c.History(cfg.node)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: %d archived windows\n", res.Label, len(res.History))
		for _, e := range res.History {
			fmt.Fprintf(out, "  window %d (%s):", e.Window, e.Scheme)
			for i, n := range e.Signature.Nodes {
				fmt.Fprintf(out, " %s=%.4f", n, e.Signature.Weights[i])
			}
			fmt.Fprintln(out)
		}
		return nil
	case "watch":
		if cfg.node == "" || cfg.individual == "" {
			return fmt.Errorf("client watch needs -node and -individual")
		}
		res, err := c.WatchlistAdd(server.WatchlistAddRequest{
			Individual: cfg.individual, Label: cfg.node,
		})
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "archived %d signature(s) of %s under %q (watchlist size %d)\n",
			res.Archived, cfg.node, cfg.individual, res.Total)
		return nil
	case "hits":
		res, err := c.WatchlistHits()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%d watchlist hits:\n", len(res.Hits))
		for _, h := range res.Hits {
			fmt.Fprintf(out, "  window %d: %-18s ~ %-18s dist=%.4f (archived window %d)\n",
				h.Window, h.Label, h.Individual, h.Dist, h.ArchivedWindow)
		}
		return nil
	case "anomalies":
		res, err := c.Anomalies(cfg.z)
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "anomalies over windows [%d,%d] (z < -%.1f): %d; mean persistence %.4f ± %.4f\n",
			res.FromWindow, res.ToWindow, cfg.z, len(res.Anomalies), res.Mean, res.StdDev)
		for _, a := range res.Anomalies {
			fmt.Fprintf(out, "  %-18s persistence=%.4f z=%.2f\n", a.Label, a.Persistence, a.ZScore)
		}
		return nil
	case "metrics":
		m, err := c.Metrics()
		if err != nil {
			return err
		}
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(out, "%-22s %d\n", k, m[k])
		}
		return nil
	case "health":
		h, err := c.Health()
		if err != nil {
			return err
		}
		fmt.Fprintf(out, "%s: uptime %.1fs, %d archived windows, current window %d, %d flows ingested\n",
			h.Status, h.UptimeSeconds, h.Windows, h.CurrentWindow, h.Ingested)
		return nil
	default:
		return fmt.Errorf("client: unknown -op %q (want search|history|watch|hits|anomalies|metrics|health)", cfg.op)
	}
}
