package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphsig/internal/server"
	"graphsig/internal/sketch"
	"graphsig/internal/stream"
)

func TestObservePollsMetrics(t *testing.T) {
	srv, err := server.New(server.Config{
		Stream: stream.Config{
			WindowSize: time.Hour,
			K:          4,
			Scheme:     "tt",
			Sketch:     sketch.StreamConfig{Width: 256, Depth: 3, Candidates: 16, Seed: 1},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var buf strings.Builder
	cfg := config{addr: ts.URL, interval: time.Millisecond, samples: 3}
	if err := runObserve(cfg, &buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	lines := strings.Count(out, "\n")
	if lines != 3 {
		t.Fatalf("observe printed %d lines, want 3:\n%s", lines, out)
	}
	// First sample is absolute, later ones are rates; every line carries
	// the latency quantiles.
	if !strings.Contains(out, "observe: flows=") || !strings.Contains(out, "flows/s=") {
		t.Fatalf("missing absolute and rate renderings:\n%s", out)
	}
	if strings.Count(out, "p99=") != 3 {
		t.Fatalf("missing quantile column:\n%s", out)
	}

	cfg.samples = 0
	if err := runObserve(cfg, &buf); err == nil {
		t.Fatal("samples=0 accepted")
	}
}

func TestRenderObserveLineRates(t *testing.T) {
	prev := map[string]int64{"flows_accepted": 100, "http_requests_total": 10}
	cur := map[string]int64{
		"flows_accepted": 300, "http_requests_total": 20,
		"windows_closed": 2, "http_errors_total": 1,
		"http_request_p50_micros": 40, "http_request_p90_micros": 90,
		"http_request_p99_micros": 400,
	}
	line := renderObserveLine(cur, prev, 2*time.Second)
	for _, want := range []string{"flows/s=100", "req/s=5.0", "windows=2", "errors=1", "p50=40us", "p99=400us"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	// A single-node snapshot carries no cluster metrics: no suffix.
	if strings.Contains(line, "lag[") || strings.Contains(line, "promotions=") {
		t.Fatalf("cluster suffix on a non-cluster line: %q", line)
	}
	// And no search traffic yet: no search suffix either.
	if strings.Contains(line, "searches=") {
		t.Fatalf("search suffix on an idle line: %q", line)
	}
	// An untiered node carries no segment counters: no segment suffix.
	if strings.Contains(line, "segs=") {
		t.Fatalf("segment suffix on an untiered line: %q", line)
	}
}

// TestRenderObserveLineSegmentSuffix: a tiered node's snapshot grows the
// cold-tier columns; errors and quarantines only appear when nonzero.
func TestRenderObserveLineSegmentSuffix(t *testing.T) {
	cur := map[string]int64{
		"store_segment_files":   4,
		"store_segment_windows": 9,
		"store_segment_loads":   12,
		"store_segment_pruned":  2,
	}
	line := renderObserveLine(cur, nil, 0)
	for _, want := range []string{"segs=4", "cold=9", "seg_reads=12", "seg_pruned=2"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	if strings.Contains(line, "seg_errors=") {
		t.Fatalf("error column on a healthy line: %q", line)
	}

	cur["store_segment_errors"] = 1
	cur["store_segment_quarantines"] = 1
	line = renderObserveLine(cur, nil, 0)
	if !strings.Contains(line, "seg_errors=1 seg_quarantined=1") {
		t.Fatalf("line %q missing error columns", line)
	}
}

// TestRenderObserveLineSearchSuffix: a snapshot with search traffic
// grows the query/batch/prefilter columns, including the batch route's
// average latency from its per-route histogram.
func TestRenderObserveLineSearchSuffix(t *testing.T) {
	cur := map[string]int64{
		"search_queries":                        40,
		"batch_searches":                        3,
		"route_post_v1_search_batch_requests":   3,
		"route_post_v1_search_batch_micros_sum": 900,
		"distmat_prefilter_checked_total":       200,
		"distmat_prefilter_skipped_total":       150,
	}
	line := renderObserveLine(cur, nil, 0)
	for _, want := range []string{"searches=40", "batches=3", "batch_avg=300us", "prefilter_skip=150/200"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
}

// TestRenderObserveLineClusterSuffix: a router snapshot with replication
// and failover metrics grows the per-shard lag / failover-read /
// promotion columns, sorted by shard for a stable layout.
func TestRenderObserveLineClusterSuffix(t *testing.T) {
	cur := map[string]int64{
		"replica_lag_bytes_1":      2048,
		"replica_lag_bytes_0":      512,
		"replica_behind_seconds_0": 3,
		"failover_reads_total_0":   4,
		"failover_reads_total_1":   1,
		"promotions_total":         1,
	}
	line := renderObserveLine(cur, nil, 0)
	for _, want := range []string{"lag[0]=512B/3s", "lag[1]=2048B", "failover_reads=5", "promotions=1"} {
		if !strings.Contains(line, want) {
			t.Fatalf("line %q missing %q", line, want)
		}
	}
	if strings.Index(line, "lag[0]") > strings.Index(line, "lag[1]") {
		t.Fatalf("shard columns not sorted: %q", line)
	}
}
