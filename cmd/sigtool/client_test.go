package main

import (
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"graphsig/internal/netflow"
	"graphsig/internal/server"
	"graphsig/internal/sketch"
	"graphsig/internal/stream"
)

// TestClientSubcommandAgainstLiveServer drives every client -op against
// a live sigserverd handler: the remote-operations counterpart of the
// offline subcommand tests.
func TestClientSubcommandAgainstLiveServer(t *testing.T) {
	t0 := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	srv, err := server.New(server.Config{
		Stream: stream.Config{
			WindowSize: time.Hour,
			Origin:     t0,
			Classify:   netflow.PrefixClassifier("10."),
			TCPOnly:    true,
			K:          5,
			Scheme:     "tt",
			Sketch:     sketch.StreamConfig{Width: 1024, Depth: 4, Candidates: 64, Seed: 1},
		},
		StoreCapacity: 8,
		WatchMaxDist:  server.Float64(0.9),
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Two windows: 10.0.0.1 and 10.0.0.2 are behavioural twins in
	// window 0; both reappear in window 1.
	flow := func(src, dst string, offset time.Duration, sessions int) netflow.Record {
		return netflow.Record{Src: src, Dst: dst, Start: t0.Add(offset), Sessions: sessions, Proto: netflow.TCP}
	}
	res := server.NewClient(ts.URL)
	if _, err := res.Ingest([]netflow.Record{
		flow("10.0.0.1", "e1", 0, 3),
		flow("10.0.0.1", "e2", time.Minute, 1),
		flow("10.0.0.2", "e1", 2*time.Minute, 3),
		flow("10.0.0.2", "e2", 3*time.Minute, 1),
		flow("10.0.0.1", "e1", time.Hour, 3),
		flow("10.0.0.1", "e2", time.Hour+time.Minute, 1),
	}); err != nil {
		t.Fatal(err)
	}

	base := config{addr: ts.URL, top: 10, maxDist: 0.9, z: 2.0}
	runOp := func(mutate func(*config)) string {
		cfg := base
		mutate(&cfg)
		var sb strings.Builder
		if err := runClient(cfg, &sb); err != nil {
			t.Fatalf("op %s: %v", cfg.op, err)
		}
		return sb.String()
	}

	// Watch 10.0.0.1 while only window 0 is archived, then flush the
	// still-open window 1: screening it must hit the watched individual.
	if out := runOp(func(c *config) { c.op = "watch"; c.node = "10.0.0.1"; c.individual = "case-7" }); !strings.Contains(out, `archived 1 signature(s) of 10.0.0.1 under "case-7"`) {
		t.Fatalf("watch output: %q", out)
	}
	if _, err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	if out := runOp(func(c *config) { c.op = "search"; c.node = "10.0.0.1" }); !strings.Contains(out, "10.0.0.2") {
		t.Fatalf("search did not surface the twin: %q", out)
	}
	if out := runOp(func(c *config) { c.op = "history"; c.node = "10.0.0.1" }); !strings.Contains(out, "2 archived windows") {
		t.Fatalf("history output: %q", out)
	}
	if out := runOp(func(c *config) { c.op = "hits" }); !strings.Contains(out, "case-7") {
		t.Fatalf("hits output: %q", out)
	}
	if out := runOp(func(c *config) { c.op = "anomalies" }); !strings.Contains(out, "windows [0,1]") {
		t.Fatalf("anomalies output: %q", out)
	}
	if out := runOp(func(c *config) { c.op = "metrics" }); !strings.Contains(out, "flows_received") {
		t.Fatalf("metrics output: %q", out)
	}
	if out := runOp(func(c *config) { c.op = "health" }); !strings.Contains(out, "ok:") {
		t.Fatalf("health output: %q", out)
	}

	// Unknown op and missing arguments are reported, not panics.
	if err := runClient(config{addr: ts.URL, op: "bogus"}, &strings.Builder{}); err == nil {
		t.Fatal("bogus op accepted")
	}
	if err := runClient(config{addr: ts.URL, op: "search"}, &strings.Builder{}); err == nil {
		t.Fatal("search without -node accepted")
	}
}
