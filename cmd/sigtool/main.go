// Command sigtool computes and applies signatures over a flow file
// produced by siggen (or any capture in the same text/binary format).
//
// Subcommands:
//
//	sigtool stats      -flows FILE [-window DUR]
//	sigtool export     -flows FILE -out SIGFILE [-scheme S] [-k N] [-t IDX]
//	sigtool compare    -flows FILE -sigs SIGFILE [-scheme S] [-k N] [-t IDX]
//	sigtool screen     -flows FILE -sigs SIGFILE [-k N] [-t IDX] [-maxdist D]
//	sigtool sig        -flows FILE -node LABEL [-scheme S] [-k N] [-t IDX]
//	sigtool neighbors  -flows FILE -node LABEL [-scheme S] [-k N] [-t IDX] [-top N]
//	sigtool multiusage -flows FILE [-scheme S] [-k N] [-t IDX] [-threshold D]
//	sigtool masquerade -flows FILE [-scheme S] [-k N] [-t IDX] [-ell N] [-c N]
//	sigtool anomalies  -flows FILE [-scheme S] [-k N] [-t IDX] [-z Z]
//	sigtool client     -addr URL -op OP [options]
//	sigtool observe    -addr URL [-interval DUR] [-samples N]
//	sigtool trace      -addr ROUTER_URL ID
//
// -scheme accepts tt, ut, ut-tfidf, rwr@C, rwrH@C (default rwr3@0.1 for
// masquerade/anomalies, tt otherwise, per the paper's recommendations).
//
// The client subcommand talks to a running sigserverd instead of a flow
// file; -op selects search, history, watch, hits, anomalies, metrics,
// or health. The observe subcommand polls a running sigserverd's
// /metrics endpoint and renders ingest/request rates and latency
// quantiles, one line per sample. The trace subcommand fetches one
// stitched distributed trace from a sigrouterd (GET /v1/traces/{id})
// and renders it as an indented tree with stragglers highlighted.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"graphsig"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd := os.Args[1]
	fs := flag.NewFlagSet(cmd, flag.ExitOnError)
	flows := fs.String("flows", "", "flow file (text .txt or binary .nfb)")
	window := fs.Duration("window", 5*24*time.Hour, "aggregation window size")
	prefix := fs.String("local-prefix", "10.", "label prefix marking local hosts")
	scheme := fs.String("scheme", "", "signature scheme (default depends on subcommand)")
	k := fs.Int("k", 10, "signature length")
	t := fs.Int("t", 0, "window index")
	node := fs.String("node", "", "node label")
	top := fs.Int("top", 10, "neighbours to list")
	threshold := fs.Float64("threshold", 0.7, "multiusage distance threshold")
	ell := fs.Int("ell", 3, "Algorithm 1 top-ℓ")
	c := fs.Int("c", 5, "Algorithm 1 δ scale")
	z := fs.Float64("z", 2.0, "anomaly z-score cut")
	out := fs.String("out", "", "output path (export)")
	sigsPath := fs.String("sigs", "", "serialized signature file (compare/screen)")
	maxDist := fs.Float64("maxdist", 0.5, "watchlist hit threshold (screen/client search)")
	addr := fs.String("addr", "http://127.0.0.1:8787", "sigserverd base URL (client/observe)")
	op := fs.String("op", "", "client operation (search|history|watch|hits|anomalies|metrics|health)")
	individual := fs.String("individual", "", "watchlist individual key (client -op watch)")
	interval := fs.Duration("interval", time.Second, "polling interval (observe)")
	samples := fs.Int("samples", 5, "samples to take before exiting (observe)")
	if err := fs.Parse(os.Args[2:]); err != nil {
		os.Exit(2)
	}

	if err := run(cmd, config{
		flows: *flows, window: *window, prefix: *prefix, scheme: *scheme,
		k: *k, t: *t, node: *node, top: *top, threshold: *threshold,
		ell: *ell, c: *c, z: *z, out: *out, sigs: *sigsPath, maxDist: *maxDist,
		addr: *addr, op: *op, individual: *individual,
		interval: *interval, samples: *samples, args: fs.Args(),
	}); err != nil {
		fmt.Fprintln(os.Stderr, "sigtool:", err)
		os.Exit(1)
	}
}

type config struct {
	flows      string
	window     time.Duration
	prefix     string
	scheme     string
	k          int
	t          int
	node       string
	top        int
	threshold  float64
	ell        int
	c          int
	z          float64
	out        string
	sigs       string
	maxDist    float64
	addr       string
	op         string
	individual string
	interval   time.Duration
	samples    int
	args       []string // positional arguments after the flags
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: sigtool <stats|sig|neighbors|multiusage|masquerade|anomalies|export|compare|screen> -flows FILE [options]
       sigtool client -addr URL -op <search|history|watch|hits|anomalies|metrics|health> [options]
       sigtool observe -addr URL [-interval DUR] [-samples N]
       sigtool trace -addr ROUTER_URL ID`)
}

func run(cmd string, cfg config) error {
	if cmd == "client" {
		// The client talks to a running sigserverd; no flow file needed.
		return runClient(cfg, os.Stdout)
	}
	if cmd == "observe" {
		// Live metrics dashboard over a running sigserverd.
		return runObserve(cfg, os.Stdout)
	}
	if cmd == "trace" {
		// Render one stitched distributed trace from a router.
		return runTrace(cfg, os.Stdout)
	}
	if cfg.flows == "" {
		usage()
		return fmt.Errorf("missing -flows")
	}
	windows, err := loadWindows(cfg)
	if err != nil {
		return err
	}
	if len(windows) == 0 {
		return fmt.Errorf("no windows in %s", cfg.flows)
	}
	if cfg.t < 0 || cfg.t >= len(windows) {
		return fmt.Errorf("window %d out of range [0,%d)", cfg.t, len(windows))
	}

	switch cmd {
	case "stats":
		for i, w := range windows {
			fmt.Printf("window %d: %s\n", i, graphsig.SummarizeGraph(w))
		}
		return nil
	case "sig":
		return runSig(cfg, windows)
	case "neighbors":
		return runNeighbors(cfg, windows)
	case "multiusage":
		return runMultiusage(cfg, windows)
	case "masquerade":
		return runMasquerade(cfg, windows)
	case "anomalies":
		return runAnomalies(cfg, windows)
	case "export":
		return runExport(cfg, windows)
	case "compare":
		return runCompare(cfg, windows)
	case "screen":
		return runScreen(cfg, windows)
	default:
		usage()
		return fmt.Errorf("unknown subcommand %q", cmd)
	}
}

func loadWindows(cfg config) ([]*graphsig.Graph, error) {
	f, err := os.Open(cfg.flows)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var records []graphsig.FlowRecord
	if strings.HasSuffix(cfg.flows, ".nfb") {
		records, err = graphsig.ReadFlowsBinary(f)
	} else {
		records, err = graphsig.ReadFlowsText(f)
	}
	if err != nil {
		return nil, err
	}
	return graphsig.AggregateFlows(records, cfg.window, graphsig.PrefixClassifier(cfg.prefix))
}

func pickScheme(cfg config, fallback string) (graphsig.Scheme, error) {
	name := cfg.scheme
	if name == "" {
		name = fallback
	}
	return graphsig.ParseScheme(name)
}

func lookup(w *graphsig.Graph, label string) (graphsig.NodeID, error) {
	id, ok := w.Universe().Lookup(label)
	if !ok {
		return 0, fmt.Errorf("unknown node label %q", label)
	}
	return id, nil
}

func runSig(cfg config, windows []*graphsig.Graph) error {
	s, err := pickScheme(cfg, "tt")
	if err != nil {
		return err
	}
	w := windows[cfg.t]
	v, err := lookup(w, cfg.node)
	if err != nil {
		return err
	}
	sig, err := graphsig.SignatureOf(s, w, v, cfg.k)
	if err != nil {
		return err
	}
	fmt.Printf("σ_%d(%s) under %s, k=%d:\n", cfg.t, cfg.node, s.Name(), cfg.k)
	for i := range sig.Nodes {
		fmt.Printf("  %-18s %.6f\n", w.Universe().Label(sig.Nodes[i]), sig.Weights[i])
	}
	return nil
}

func runNeighbors(cfg config, windows []*graphsig.Graph) error {
	s, err := pickScheme(cfg, "tt")
	if err != nil {
		return err
	}
	w := windows[cfg.t]
	v, err := lookup(w, cfg.node)
	if err != nil {
		return err
	}
	set, err := graphsig.ComputeSignatures(s, w, cfg.k)
	if err != nil {
		return err
	}
	pairs, err := graphsig.NearestNeighbors(graphsig.DistSHel(), set, v, cfg.top)
	if err != nil {
		return err
	}
	fmt.Printf("nearest signatures to %s (%s, Dist_SHel):\n", cfg.node, s.Name())
	for _, p := range pairs {
		fmt.Printf("  %-18s %.4f\n", w.Universe().Label(p.B), p.Dist)
	}
	return nil
}

func runMultiusage(cfg config, windows []*graphsig.Graph) error {
	s, err := pickScheme(cfg, "tt")
	if err != nil {
		return err
	}
	w := windows[cfg.t]
	set, err := graphsig.ComputeSignatures(s, w, cfg.k)
	if err != nil {
		return err
	}
	pairs, err := graphsig.DetectMultiusage(graphsig.DistSHel(), set, cfg.threshold)
	if err != nil {
		return err
	}
	fmt.Printf("multiusage candidates (%s, Dist ≤ %.2f): %d pairs\n", s.Name(), cfg.threshold, len(pairs))
	for _, p := range pairs {
		fmt.Printf("  %-18s %-18s %.4f\n", w.Universe().Label(p.A), w.Universe().Label(p.B), p.Dist)
	}
	return nil
}

func runMasquerade(cfg config, windows []*graphsig.Graph) error {
	if cfg.t+1 >= len(windows) {
		return fmt.Errorf("masquerade needs windows %d and %d", cfg.t, cfg.t+1)
	}
	s, err := pickScheme(cfg, "rwr3@0.1")
	if err != nil {
		return err
	}
	at, err := graphsig.ComputeSignatures(s, windows[cfg.t], cfg.k)
	if err != nil {
		return err
	}
	next, err := graphsig.ComputeSignatures(s, windows[cfg.t+1], cfg.k)
	if err != nil {
		return err
	}
	d := graphsig.DistSHel()
	delta, err := graphsig.MasqueradeDelta(d, at, next, cfg.c)
	if err != nil {
		return err
	}
	res, err := graphsig.DetectLabelMasquerading(d, at, next, delta, cfg.ell)
	if err != nil {
		return err
	}
	fmt.Printf("masquerade detection (%s, δ=%.4f, ℓ=%d): %d suspected pairs, %d non-suspects\n",
		s.Name(), delta, cfg.ell, len(res.Pairs), len(res.NonSuspects))
	u := windows[cfg.t].Universe()
	type pair struct{ from, to string }
	var out []pair
	for v, to := range res.Pairs {
		out = append(out, pair{u.Label(v), u.Label(to)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].from < out[j].from })
	for _, p := range out {
		fmt.Printf("  %-18s -> %s\n", p.from, p.to)
	}
	return nil
}

// runExport computes a window's signatures and serializes them, so a
// later run can compare fresh traffic against a stored baseline.
func runExport(cfg config, windows []*graphsig.Graph) error {
	if cfg.out == "" {
		return fmt.Errorf("export needs -out")
	}
	s, err := pickScheme(cfg, "tt")
	if err != nil {
		return err
	}
	w := windows[cfg.t]
	set, err := graphsig.ComputeSignatures(s, w, cfg.k)
	if err != nil {
		return err
	}
	f, err := os.Create(cfg.out)
	if err != nil {
		return err
	}
	if err := graphsig.WriteSignatures(f, set, w.Universe()); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("exported %d signatures (%s, window %d) to %s\n", set.Len(), set.Scheme, set.Window, cfg.out)
	return nil
}

// runCompare loads a stored signature baseline and reports the
// persistence of each current host against it — the operational form
// of anomaly/masquerade monitoring.
func runCompare(cfg config, windows []*graphsig.Graph) error {
	if cfg.sigs == "" {
		return fmt.Errorf("compare needs -sigs")
	}
	w := windows[cfg.t]
	f, err := os.Open(cfg.sigs)
	if err != nil {
		return err
	}
	baseline, err := graphsig.ReadSignatures(f, w.Universe())
	f.Close()
	if err != nil {
		return err
	}
	s, err := pickScheme(cfg, baseline.Scheme)
	if err != nil {
		return err
	}
	current, err := graphsig.ComputeSignatures(s, w, cfg.k)
	if err != nil {
		return err
	}
	d := graphsig.DistSHel()
	pers := graphsig.Persistence(d, baseline, current)
	type row struct {
		label string
		p     float64
	}
	rows := make([]row, 0, len(pers))
	for v, p := range pers {
		rows = append(rows, row{w.Universe().Label(v), p})
	}
	sort.Slice(rows, func(i, j int) bool {
		if rows[i].p != rows[j].p {
			return rows[i].p < rows[j].p
		}
		return rows[i].label < rows[j].label
	})
	fmt.Printf("persistence vs baseline %s (window %d vs %d), least persistent first:\n",
		cfg.sigs, baseline.Window, w.Index())
	for i, r := range rows {
		if i == cfg.top {
			fmt.Printf("  ... %d more\n", len(rows)-i)
			break
		}
		fmt.Printf("  %-18s %.4f\n", r.label, r.p)
	}
	return nil
}

// runScreen loads an exported signature archive as a watchlist and
// screens the selected window's hosts against it: the §I reappearance
// question ("is this new label an individual we have seen before?").
func runScreen(cfg config, windows []*graphsig.Graph) error {
	if cfg.sigs == "" {
		return fmt.Errorf("screen needs -sigs")
	}
	w := windows[cfg.t]
	f, err := os.Open(cfg.sigs)
	if err != nil {
		return err
	}
	archiveSet, err := graphsig.ReadSignatures(f, w.Universe())
	f.Close()
	if err != nil {
		return err
	}
	s, err := pickScheme(cfg, archiveSet.Scheme)
	if err != nil {
		return err
	}
	watch := graphsig.NewWatchlist()
	if err := watch.AddSet(archiveSet, w.Universe().Label); err != nil {
		return err
	}
	current, err := graphsig.ComputeSignatures(s, w, cfg.k)
	if err != nil {
		return err
	}
	hits, err := watch.Screen(graphsig.DistSHel(), current, cfg.maxDist)
	if err != nil {
		return err
	}
	fmt.Printf("screened %d hosts against %d archived signatures (Dist ≤ %.2f): %d with hits\n",
		current.Len(), watch.Len(), cfg.maxDist, len(hits))
	var nodes []graphsig.NodeID
	for v := range hits {
		nodes = append(nodes, v)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	for _, v := range nodes {
		best := hits[v][0]
		marker := ""
		if w.Universe().Label(v) != best.Individual {
			marker = "  << label differs from archived identity"
		}
		fmt.Printf("  %-18s ~ %-18s dist=%.4f (window %d)%s\n",
			w.Universe().Label(v), best.Individual, best.Dist, best.Window, marker)
	}
	return nil
}

func runAnomalies(cfg config, windows []*graphsig.Graph) error {
	if cfg.t+1 >= len(windows) {
		return fmt.Errorf("anomalies needs windows %d and %d", cfg.t, cfg.t+1)
	}
	s, err := pickScheme(cfg, "rwr3@0.1")
	if err != nil {
		return err
	}
	at, err := graphsig.ComputeSignatures(s, windows[cfg.t], cfg.k)
	if err != nil {
		return err
	}
	next, err := graphsig.ComputeSignatures(s, windows[cfg.t+1], cfg.k)
	if err != nil {
		return err
	}
	anomalies, population, err := graphsig.DetectAnomalies(graphsig.DistSHel(), at, next, cfg.z)
	if err != nil {
		return err
	}
	fmt.Printf("anomalies (%s, z < -%.1f): %d of %d; population persistence %s\n",
		s.Name(), cfg.z, len(anomalies), population.N, population)
	u := windows[cfg.t].Universe()
	for _, a := range anomalies {
		fmt.Printf("  %-18s persistence=%.4f z=%.2f\n", u.Label(a.Node), a.Persistence, a.ZScore)
	}
	return nil
}
