package main

import (
	"os"
	"path/filepath"
	"testing"
	"time"

	"graphsig"
)

// writeFixture generates a small capture to a temp flow file and
// returns its path plus a label present in the data.
func writeFixture(t *testing.T) (string, string, graphsig.EnterpriseConfig) {
	t.Helper()
	cfg := graphsig.DefaultEnterpriseConfig(4)
	cfg.LocalHosts = 25
	cfg.ExternalHosts = 300
	cfg.Communities = 3
	cfg.Windows = 2
	cfg.MultiusageIndividuals = 3
	data, err := graphsig.GenerateEnterprise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "flows.txt")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := graphsig.WriteFlowsText(f, data.Records); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	return path, data.Records[0].Src, cfg
}

func baseConfig(flows string, cfg graphsig.EnterpriseConfig) config {
	return config{
		flows:     flows,
		window:    cfg.WindowLength,
		prefix:    "10.",
		k:         10,
		top:       5,
		threshold: 0.8,
		ell:       3,
		c:         5,
		z:         1.5,
	}
}

func TestSigtoolSubcommands(t *testing.T) {
	flows, node, gcfg := writeFixture(t)
	cfg := baseConfig(flows, gcfg)
	cfg.node = node

	for _, cmd := range []string{"stats", "sig", "neighbors", "multiusage", "masquerade", "anomalies"} {
		if err := run(cmd, cfg); err != nil {
			t.Fatalf("%s: %v", cmd, err)
		}
	}
}

func TestSigtoolExportCompare(t *testing.T) {
	flows, _, gcfg := writeFixture(t)
	cfg := baseConfig(flows, gcfg)
	cfg.out = filepath.Join(t.TempDir(), "base.sigs")
	if err := run("export", cfg); err != nil {
		t.Fatal(err)
	}
	cmp := baseConfig(flows, gcfg)
	cmp.sigs = cfg.out
	cmp.t = 1
	if err := run("compare", cmp); err != nil {
		t.Fatal(err)
	}
	scr := baseConfig(flows, gcfg)
	scr.sigs = cfg.out
	scr.t = 1
	scr.maxDist = 0.6
	if err := run("screen", scr); err != nil {
		t.Fatal(err)
	}
	// Missing flags error cleanly.
	noOut := baseConfig(flows, gcfg)
	if err := run("export", noOut); err == nil {
		t.Fatal("export without -out accepted")
	}
	if err := run("compare", noOut); err == nil {
		t.Fatal("compare without -sigs accepted")
	}
	if err := run("screen", noOut); err == nil {
		t.Fatal("screen without -sigs accepted")
	}
}

func TestSigtoolErrors(t *testing.T) {
	flows, _, gcfg := writeFixture(t)
	if err := run("stats", config{}); err == nil {
		t.Fatal("missing -flows accepted")
	}
	cfg := baseConfig(flows, gcfg)
	if err := run("bogus", cfg); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
	cfg.t = 99
	if err := run("stats", cfg); err == nil {
		t.Fatal("out-of-range window accepted")
	}
	cfg = baseConfig(flows, gcfg)
	cfg.node = "10.99.99.99"
	if err := run("sig", cfg); err == nil {
		t.Fatal("unknown node accepted")
	}
	cfg = baseConfig(flows, gcfg)
	cfg.scheme = "nonsense"
	if err := run("sig", cfg); err == nil {
		t.Fatal("unknown scheme accepted")
	}
	// Masquerade on the last window has no successor.
	cfg = baseConfig(flows, gcfg)
	cfg.t = 1
	if err := run("masquerade", cfg); err == nil {
		t.Fatal("masquerade without successor window accepted")
	}
	// Unreadable file.
	cfg = baseConfig(filepath.Join(t.TempDir(), "missing.txt"), gcfg)
	if err := run("stats", cfg); err == nil {
		t.Fatal("missing file accepted")
	}
	_ = time.Now
}
