package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestSiggenRun(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 1, 25, 2, "text"); err != nil {
		t.Fatal(err)
	}
	for _, f := range []string{"flows.txt", "multiusage.txt", "queries.txt"} {
		info, err := os.Stat(filepath.Join(dir, f))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if info.Size() == 0 {
			t.Fatalf("%s is empty", f)
		}
	}
}

func TestSiggenBinaryFormat(t *testing.T) {
	dir := t.TempDir()
	if err := run(dir, 2, 25, 2, "binary"); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(filepath.Join(dir, "flows.nfb")); err != nil {
		t.Fatal(err)
	}
}

func TestSiggenBadFormat(t *testing.T) {
	if err := run(t.TempDir(), 1, 25, 2, "yaml"); err == nil {
		t.Fatal("bad format accepted")
	}
}
