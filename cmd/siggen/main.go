// Command siggen generates the synthetic datasets that stand in for the
// paper's proprietary data and writes them to disk.
//
// Usage:
//
//	siggen -out DIR [-seed N] [-hosts N] [-windows N] [-format text|binary]
//
// It writes:
//
//	DIR/flows.txt (or flows.nfb)   enterprise flow records
//	DIR/multiusage.txt             ground-truth label groups (tab-separated)
//	DIR/queries.txt                query-log tuples "window user table"
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"graphsig"
)

func main() {
	out := flag.String("out", "data", "output directory")
	seed := flag.Int64("seed", 42, "root random seed")
	hosts := flag.Int("hosts", 0, "override local host count (0 = default 300)")
	windows := flag.Int("windows", 0, "override window count (0 = default 6)")
	format := flag.String("format", "text", "flow file format: text or binary")
	flag.Parse()

	if err := run(*out, *seed, *hosts, *windows, *format); err != nil {
		fmt.Fprintln(os.Stderr, "siggen:", err)
		os.Exit(1)
	}
}

func run(out string, seed int64, hosts, windows int, format string) error {
	if err := os.MkdirAll(out, 0o755); err != nil {
		return err
	}
	fcfg := graphsig.DefaultEnterpriseConfig(seed)
	if hosts > 0 {
		fcfg.LocalHosts = hosts
		// Keep the multiusage ground truth feasible at small host
		// counts: at most a third of hosts belong to multi-label
		// individuals.
		if maxInd := hosts / (3 * fcfg.MaxLabelsPerIndividual); fcfg.MultiusageIndividuals > maxInd {
			fcfg.MultiusageIndividuals = maxInd
		}
		if fcfg.MultiusageIndividuals < 1 {
			fcfg.MultiusageIndividuals = 1
		}
	}
	if windows > 0 {
		fcfg.Windows = windows
	}
	flow, err := graphsig.GenerateEnterprise(fcfg)
	if err != nil {
		return err
	}

	switch format {
	case "text":
		if err := writeTo(filepath.Join(out, "flows.txt"), func(f *os.File) error {
			return graphsig.WriteFlowsText(f, flow.Records)
		}); err != nil {
			return err
		}
	case "binary":
		if err := writeTo(filepath.Join(out, "flows.nfb"), func(f *os.File) error {
			return graphsig.WriteFlowsBinary(f, flow.Records)
		}); err != nil {
			return err
		}
	default:
		return fmt.Errorf("unknown format %q (want text or binary)", format)
	}

	if err := writeTo(filepath.Join(out, "multiusage.txt"), func(f *os.File) error {
		for _, labels := range flow.Truth.MultiusageSets() {
			for i, l := range labels {
				if i > 0 {
					if _, err := fmt.Fprint(f, "\t"); err != nil {
						return err
					}
				}
				if _, err := fmt.Fprint(f, l); err != nil {
					return err
				}
			}
			if _, err := fmt.Fprintln(f); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	qcfg := graphsig.DefaultQueryLogConfig(seed + 1)
	if windows > 0 {
		qcfg.Windows = windows
	}
	query, err := graphsig.GenerateQueryLog(qcfg)
	if err != nil {
		return err
	}
	if err := writeTo(filepath.Join(out, "queries.txt"), func(f *os.File) error {
		for _, t := range query.Tuples {
			if _, err := fmt.Fprintf(f, "%d %s %s\n", t.Window, t.User, t.Table); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		return err
	}

	fmt.Printf("wrote %d flow records, %d multiusage groups, %d query tuples to %s\n",
		len(flow.Records), len(flow.Truth.MultiusageSets()), len(query.Tuples), out)
	for i, w := range flow.Windows {
		fmt.Printf("  flow window %d: %s\n", i, graphsig.SummarizeGraph(w))
	}
	return nil
}

func writeTo(path string, fn func(*os.File) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return fmt.Errorf("write %s: %w", path, err)
	}
	return f.Close()
}
