package graphsig_test

import (
	"fmt"
	"log"

	"graphsig"
)

// Example builds two windows of a small call graph and measures how
// persistent and unique Top Talkers signatures are.
func Example() {
	u := graphsig.NewUniverse()
	week := func(idx int, calls [][3]any) *graphsig.Graph {
		b := graphsig.NewGraphBuilder(u, idx)
		for _, c := range calls {
			if err := b.AddLabeled(c[0].(string), graphsig.PartNone, c[1].(string), graphsig.PartNone, c[2].(float64)); err != nil {
				log.Fatal(err)
			}
		}
		return b.Build()
	}
	g0 := week(0, [][3]any{
		{"alice", "mom", 9.0}, {"alice", "pizza", 3.0},
		{"bob", "carol", 7.0}, {"bob", "dave", 5.0},
	})
	g1 := week(1, [][3]any{
		{"alice", "mom", 8.0}, {"alice", "pizza", 2.0},
		{"bob", "carol", 6.0}, {"bob", "dave", 6.0},
	})

	at, _ := graphsig.ComputeSignatures(graphsig.TopTalkers(), g0, 2)
	next, _ := graphsig.ComputeSignatures(graphsig.TopTalkers(), g1, 2)
	d := graphsig.DistJaccard()
	p := graphsig.Persistence(d, at, next)
	alice, _ := u.Lookup("alice")
	fmt.Printf("alice persistence: %.2f\n", p[alice])
	// Output:
	// alice persistence: 1.00
}

// ExampleSignatureOf shows one node's Top Talkers signature: the top-k
// contacts with normalized communication weights.
func ExampleSignatureOf() {
	u := graphsig.NewUniverse()
	b := graphsig.NewGraphBuilder(u, 0)
	_ = b.AddLabeled("alice", graphsig.PartNone, "mom", graphsig.PartNone, 6)
	_ = b.AddLabeled("alice", graphsig.PartNone, "dad", graphsig.PartNone, 3)
	_ = b.AddLabeled("alice", graphsig.PartNone, "411", graphsig.PartNone, 1)
	g := b.Build()

	alice, _ := u.Lookup("alice")
	sig, _ := graphsig.SignatureOf(graphsig.TopTalkers(), g, alice, 2)
	for i := range sig.Nodes {
		fmt.Printf("%s %.1f\n", u.Label(sig.Nodes[i]), sig.Weights[i])
	}
	// Output:
	// mom 0.6
	// dad 0.3
}

// ExampleParseScheme round-trips a scheme name.
func ExampleParseScheme() {
	s, err := graphsig.ParseScheme("rwr3@0.1")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(s.Name())
	// Output:
	// rwr3@0.1
}

// ExampleDetectMultiusage finds two labels behaving like one individual.
func ExampleDetectMultiusage() {
	u := graphsig.NewUniverse()
	b := graphsig.NewGraphBuilder(u, 0)
	// home-ip and office-ip visit the same sites; printer does not.
	for _, e := range [][3]any{
		{"home-ip", "news.example", 5.0}, {"home-ip", "forum.example", 3.0},
		{"office-ip", "news.example", 4.0}, {"office-ip", "forum.example", 2.0},
		{"printer", "updates.example", 9.0},
	} {
		_ = b.AddLabeled(e[0].(string), graphsig.Part1, e[1].(string), graphsig.Part2, e[2].(float64))
	}
	g := b.Build()

	set, _ := graphsig.ComputeSignatures(graphsig.TopTalkers(), g, 5)
	pairs, _ := graphsig.DetectMultiusage(graphsig.DistJaccard(), set, 0.5)
	for _, p := range pairs {
		fmt.Printf("%s ~ %s (dist %.2f)\n", u.Label(p.A), u.Label(p.B), p.Dist)
	}
	// Output:
	// home-ip ~ office-ip (dist 0.00)
}

// ExampleDecayCombine applies exponential history decay before
// computing signatures.
func ExampleDecayCombine() {
	u := graphsig.NewUniverse()
	b0 := graphsig.NewGraphBuilder(u, 0)
	_ = b0.AddLabeled("a", graphsig.PartNone, "x", graphsig.PartNone, 4)
	b1 := graphsig.NewGraphBuilder(u, 1)
	_ = b1.AddLabeled("a", graphsig.PartNone, "y", graphsig.PartNone, 2)

	combined, _ := graphsig.DecayCombine([]*graphsig.Graph{b0.Build(), b1.Build()}, 0.5)
	a, _ := u.Lookup("a")
	x, _ := u.Lookup("x")
	y, _ := u.Lookup("y")
	fmt.Printf("C'[a,x]=%.0f C'[a,y]=%.0f\n", combined[1].Weight(a, x), combined[1].Weight(a, y))
	// Output:
	// C'[a,x]=2 C'[a,y]=2
}
