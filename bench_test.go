package graphsig_test

// Benchmark harness: one benchmark per paper table/figure (regenerating
// the artifact end-to-end on a reduced-scale dataset; run cmd/sigbench
// for the full-scale numbers) plus micro-benchmarks of the hot kernels
// (scheme computation, distances, AUC, perturbation, sketches, LSH).

import (
	"io"
	"sync"
	"testing"

	"graphsig"
	"graphsig/internal/apps"
	"graphsig/internal/core"
	"graphsig/internal/distmat"
	"graphsig/internal/eval"
	"graphsig/internal/experiments"
	"graphsig/internal/lsh"
	"graphsig/internal/perturb"
	"graphsig/internal/sketch"
	"graphsig/internal/stats"
)

// benchScale keeps one experiment iteration in the ~100ms range; the
// shapes measured here are the same the full-scale run reports.
const benchScale = 0.35

var (
	benchOnce sync.Once
	benchEnv  *experiments.Env
	benchErr  error
)

func env(b *testing.B) *experiments.Env {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := experiments.LoadScaled(42, benchScale)
		if err != nil {
			benchErr = err
			return
		}
		benchEnv = experiments.NewEnv(ds, 42)
	})
	if benchErr != nil {
		b.Fatal(benchErr)
	}
	return benchEnv
}

// freshEnv returns an uncached environment so a benchmark measures the
// experiment's real work rather than memoized signature sets.
func freshEnv(b *testing.B) *experiments.Env {
	b.Helper()
	e := env(b)
	return experiments.NewEnv(e.DS, 42)
}

func BenchmarkTableIV(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.TableIVMeasured(freshEnv(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure1(freshEnv(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure2(freshEnv(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3a(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3a(freshEnv(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure3b(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure3b(freshEnv(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure4(freshEnv(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure5(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure5(freshEnv(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure6(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Figure6(freshEnv(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStreamingAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.StreamingAblation(freshEnv(b), sketch.StreamConfig{Seed: 42}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSHAblation(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.LSHAblation(freshEnv(b), 16, 2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAnomalyDetection(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := experiments.AnomalyDetection(freshEnv(b)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRunAll(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := experiments.RunAll(io.Discard, freshEnv(b)); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- micro-benchmarks ----

func flowWindow(b *testing.B) *graphsig.Graph {
	return env(b).DS.Flow.Windows[0]
}

func BenchmarkSchemeTT(b *testing.B) {
	w := flowWindow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), w, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchemeUT(b *testing.B) {
	w := flowWindow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphsig.ComputeSignatures(graphsig.UnexpectedTalkers(), w, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchemeRWR3(b *testing.B) {
	w := flowWindow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphsig.ComputeSignatures(graphsig.RandomWalk(0.1, 3), w, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkSchemeRWRConverged(b *testing.B) {
	w := flowWindow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := graphsig.ComputeSignatures(graphsig.RandomWalk(0.1, 0), w, 10); err != nil {
			b.Fatal(err)
		}
	}
}

func benchSigs(b *testing.B) *graphsig.SignatureSet {
	set, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), flowWindow(b), 10)
	if err != nil {
		b.Fatal(err)
	}
	return set
}

func BenchmarkDistances(b *testing.B) {
	set := benchSigs(b)
	if set.Len() < 2 {
		b.Fatal("too few signatures")
	}
	for _, d := range graphsig.AllDistances() {
		b.Run(d.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				d.Dist(set.Sigs[i%set.Len()], set.Sigs[(i+1)%set.Len()])
			}
		})
	}
}

func BenchmarkSelfRetrievalAUC(b *testing.B) {
	e := env(b)
	s := core.TopTalkers{}
	at, err := e.Sigs(experiments.FlowData, s, 0)
	if err != nil {
		b.Fatal(err)
	}
	next, err := e.Sigs(experiments.FlowData, s, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eval.SelfRetrievalAUC(core.ScaledHellinger{}, at, next); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPerturb(b *testing.B) {
	w := flowWindow(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := perturb.Perturb(w, perturb.Options{InsertFrac: 0.1, DeleteFrac: 0.1, Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCountMinAdd(b *testing.B) {
	cm, err := sketch.NewCountMin(4, 256)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cm.Add(uint64(i), 1)
	}
}

func BenchmarkFMAdd(b *testing.B) {
	fm, err := sketch.NewFM(16, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fm.Add(uint64(i))
	}
}

func BenchmarkStreamTTObserve(b *testing.B) {
	st := graphsig.NewStreamTT(graphsig.StreamConfig{Seed: 1})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Observe(graphsig.NodeID(i%64), graphsig.NodeID(1000+i%500), 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkLSHQuery(b *testing.B) {
	set := benchSigs(b)
	hasher, err := lsh.NewHasher(32, 1)
	if err != nil {
		b.Fatal(err)
	}
	index, err := lsh.NewIndex(hasher, 16, 2)
	if err != nil {
		b.Fatal(err)
	}
	for i, v := range set.Sources {
		if err := index.Add(v, set.Sigs[i]); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		q := i % set.Len()
		if _, err := index.Query(set.Sigs[q], set.Sources[q], 0.2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPairwiseUniqueness compares the all-pairs uniqueness
// summary computed with the naive per-pair Dist double loop against the
// distmat engine (merge-join kernels + inverted-index candidates +
// sharded rows). The two paths produce bit-identical summaries; the
// benchmark measures the speedup.
func BenchmarkPairwiseUniqueness(b *testing.B) {
	set := benchSigs(b)
	d := core.ScaledHellinger{}
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var acc stats.Accumulator
			for i := range set.Sigs {
				for j := range set.Sigs {
					if j == i {
						continue
					}
					acc.Add(d.Dist(set.Sigs[i], set.Sigs[j]))
				}
			}
			_ = acc.Summarize()
		}
	})
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		idx := make([]int, set.Len())
		for i := range idx {
			idx[i] = i
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			eng, ok := distmat.NewEngine(set, set, d, 0)
			if !ok {
				b.Fatal("no engine")
			}
			var acc stats.Accumulator
			eng.Rows(idx, func(t int, row []float64) {
				for j, dist := range row {
					if j == t {
						continue
					}
					acc.Add(dist)
				}
			})
			_ = acc.Summarize()
		}
	})
}

// BenchmarkMultiusageAllPairs compares the multiusage all-pairs scan at
// a tight threshold: the naive quadratic loop against the engine's
// sparse posting-list enumeration (only pairs sharing ≥1 node are ever
// compared).
func BenchmarkMultiusageAllPairs(b *testing.B) {
	set := benchSigs(b)
	d := core.Jaccard{}
	const threshold = 0.3
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			var out []apps.SimilarPair
			for i := 0; i < set.Len(); i++ {
				if set.Sigs[i].IsEmpty() {
					continue
				}
				for j := i + 1; j < set.Len(); j++ {
					if set.Sigs[j].IsEmpty() {
						continue
					}
					if dist := d.Dist(set.Sigs[i], set.Sigs[j]); dist <= threshold {
						out = append(out, apps.SimilarPair{A: set.Sources[i], B: set.Sources[j], Dist: dist})
					}
				}
			}
			_ = out
		}
	})
	b.Run("engine", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := apps.DetectMultiusage(d, set, threshold); err != nil {
				b.Fatal(err)
			}
		}
	})
}

func BenchmarkGenerateEnterprise(b *testing.B) {
	cfg := graphsig.DefaultEnterpriseConfig(1)
	cfg.LocalHosts = 60
	cfg.ExternalHosts = 1200
	cfg.Communities = 5
	cfg.Windows = 2
	cfg.MultiusageIndividuals = 4
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := graphsig.GenerateEnterprise(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
