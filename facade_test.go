package graphsig_test

import (
	"bytes"
	"testing"

	"graphsig"
)

// fixtureWindows builds a small two-window bipartite dataset via the
// facade only.
func fixtureWindows(t *testing.T) (*graphsig.Universe, *graphsig.Graph, *graphsig.Graph) {
	t.Helper()
	u := graphsig.NewUniverse()
	mk := func(idx int, rows [][3]any) *graphsig.Graph {
		b := graphsig.NewGraphBuilder(u, idx)
		for _, r := range rows {
			if err := b.AddLabeled(r[0].(string), graphsig.Part1, r[1].(string), graphsig.Part2, r[2].(float64)); err != nil {
				t.Fatal(err)
			}
		}
		return b.Build()
	}
	g0 := mk(0, [][3]any{
		{"h1", "e1", 5.0}, {"h1", "e2", 2.0},
		{"h2", "e3", 4.0}, {"h2", "e1", 1.0},
		{"h3", "e4", 3.0}, {"h3", "e5", 3.0},
	})
	g1 := mk(1, [][3]any{
		{"h1", "e1", 6.0}, {"h1", "e2", 1.0},
		{"h2", "e3", 5.0},
		{"h3", "e4", 2.0}, {"h3", "e5", 4.0},
	})
	return u, g0, g1
}

func TestFacadeDistances(t *testing.T) {
	if len(graphsig.AllDistances()) != 4 || len(graphsig.ExtendedDistances()) != 6 {
		t.Fatal("distance menus wrong")
	}
	_, g0, _ := fixtureWindows(t)
	set, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), g0, 3)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range []graphsig.Distance{
		graphsig.DistJaccard(), graphsig.DistDice(), graphsig.DistSDice(),
		graphsig.DistSHel(), graphsig.DistCosine(), graphsig.DistWeightedJaccard(),
	} {
		if got := d.Dist(set.Sigs[0], set.Sigs[0]); got != 0 {
			t.Fatalf("%s self-distance %g", d.Name(), got)
		}
	}
}

func TestFacadeBlendAndCompare(t *testing.T) {
	_, g0, g1 := fixtureWindows(t)
	blend := graphsig.BlendSchemes(graphsig.TopTalkers(), graphsig.UnexpectedTalkers(), 0.5)
	set, err := graphsig.ComputeSignatures(blend, g0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() != 3 {
		t.Fatalf("blend set size %d", set.Len())
	}
	diff, err := graphsig.CompareSchemesAUC(graphsig.DistSHel(),
		graphsig.TopTalkers(), graphsig.UnexpectedTalkers(), g0, g1, 3, 7)
	if err != nil {
		t.Fatal(err)
	}
	if diff.Queries != 3 {
		t.Fatalf("paired queries = %d", diff.Queries)
	}
}

func TestFacadeSerializationRoundTrip(t *testing.T) {
	u, g0, _ := fixtureWindows(t)
	set, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), g0, 3)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := graphsig.WriteSignatures(&buf, set, u); err != nil {
		t.Fatal(err)
	}
	got, err := graphsig.ReadSignatures(&buf, graphsig.NewUniverse())
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != set.Len() || got.Scheme != "tt" {
		t.Fatalf("round trip: %d sigs, scheme %s", got.Len(), got.Scheme)
	}
}

func TestFacadeNeighborsAndApprox(t *testing.T) {
	u, g0, _ := fixtureWindows(t)
	set, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), g0, 3)
	if err != nil {
		t.Fatal(err)
	}
	h1, _ := u.Lookup("h1")
	nn, err := graphsig.NearestNeighbors(graphsig.DistSHel(), set, h1, 2)
	if err != nil || len(nn) != 2 {
		t.Fatalf("neighbours: %v %v", nn, err)
	}
	pairs, err := graphsig.DetectMultiusageApprox(set, 1.0, 16, 2, 5)
	if err != nil {
		t.Fatal(err)
	}
	// h1 and h2 share e1; approximate scan may surface them, and must
	// never invent a pair that the exact scan would reject.
	exact, err := graphsig.DetectMultiusage(graphsig.DistJaccard(), set, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	exactSet := map[[2]graphsig.NodeID]bool{}
	for _, p := range exact {
		exactSet[[2]graphsig.NodeID{p.A, p.B}] = true
	}
	for _, p := range pairs {
		if !exactSet[[2]graphsig.NodeID{p.A, p.B}] {
			t.Fatalf("approx invented pair %+v", p)
		}
	}
}

func TestFacadeDeAnonymize(t *testing.T) {
	_, g0, g1 := fixtureWindows(t)
	ref, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), g0, 3)
	if err != nil {
		t.Fatal(err)
	}
	cur, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), g1, 3)
	if err != nil {
		t.Fatal(err)
	}
	matches, err := graphsig.DeAnonymize(graphsig.DistSHel(), ref, cur, true)
	if err != nil {
		t.Fatal(err)
	}
	truth := map[graphsig.NodeID]graphsig.NodeID{}
	for _, v := range ref.Sources {
		truth[v] = v // identity relabelling
	}
	acc, err := graphsig.DeAnonymizationAccuracy(matches, truth)
	if err != nil {
		t.Fatal(err)
	}
	if acc != 1 {
		t.Fatalf("identity matching accuracy = %g", acc)
	}
}

func TestFacadeTelephone(t *testing.T) {
	cfg := graphsig.DefaultTelephoneConfig(3)
	cfg.Subscribers = 80
	cfg.Businesses = 8
	cfg.Communities = 6
	cfg.Windows = 2
	data, err := graphsig.GenerateTelephone(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Windows) != 2 {
		t.Fatalf("windows = %d", len(data.Windows))
	}
	set, err := graphsig.ComputeSignatures(graphsig.RandomWalk(0.1, 3), data.Windows[0], 6)
	if err != nil {
		t.Fatal(err)
	}
	if set.Len() == 0 {
		t.Fatal("no call-graph signatures")
	}
}

func TestFacadeGraphHelpers(t *testing.T) {
	u, g0, _ := fixtureWindows(t)
	stats := graphsig.SummarizeGraph(g0)
	if stats.Edges != 6 {
		t.Fatalf("edges = %d", stats.Edges)
	}
	g, err := graphsig.GraphFromEdges(u, 5, g0.Edges())
	if err != nil || g.Index() != 5 || g.NumEdges() != 6 {
		t.Fatalf("GraphFromEdges: %v %v", g, err)
	}
	sig, err := graphsig.SignatureOf(graphsig.TopTalkers(), g0, mustLookupLabel(t, u, "h1"), 2)
	if err != nil || sig.Len() != 2 {
		t.Fatalf("SignatureOf: %v %v", sig, err)
	}
	set, err := graphsig.ComputeSignaturesFor(graphsig.TopTalkers(), g0,
		[]graphsig.NodeID{mustLookupLabel(t, u, "h1")}, 2)
	if err != nil || set.Len() != 1 {
		t.Fatalf("ComputeSignaturesFor: %v", err)
	}
	masq, m, err := graphsig.SimulateMasquerade(g0, set.Sources, 0, 1)
	if err != nil || len(m.Mapping) != 0 || masq.NumEdges() != g0.NumEdges() {
		t.Fatalf("no-op masquerade wrong: %v", err)
	}
}

func TestFacadeWatchlist(t *testing.T) {
	u, g0, g1 := fixtureWindows(t)
	archive, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), g0, 3)
	if err != nil {
		t.Fatal(err)
	}
	w := graphsig.NewWatchlist()
	if err := w.AddSet(archive, u.Label); err != nil {
		t.Fatal(err)
	}
	current, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), g1, 3)
	if err != nil {
		t.Fatal(err)
	}
	hits, err := w.Screen(graphsig.DistSHel(), current, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	// Every host behaves like its own archived self.
	h1, _ := u.Lookup("h1")
	got, ok := hits[h1]
	if !ok || got[0].Individual != "h1" {
		t.Fatalf("h1 hits = %+v", got)
	}
}

func mustLookupLabel(t *testing.T, u *graphsig.Universe, label string) graphsig.NodeID {
	t.Helper()
	id, ok := u.Lookup(label)
	if !ok {
		t.Fatalf("label %q missing", label)
	}
	return id
}
