// Quickstart: build two tiny communication graphs by hand, compute
// signatures under the three paper schemes, and measure the three
// signature properties — persistence, uniqueness and robustness — the
// way §II-C defines them.
package main

import (
	"fmt"
	"log"

	"graphsig"
)

func main() {
	u := graphsig.NewUniverse()

	// Two windows of a small phone-like graph. alice calls her family
	// and a pizza place consistently; bob calls his friends; directory
	// assistance ("411") is called by everyone, so it should not
	// dominate anyone's identity.
	week1 := [][3]any{
		{"alice", "mom", 9.0}, {"alice", "dad", 6.0}, {"alice", "pizza", 3.0}, {"alice", "411", 1.0},
		{"bob", "carol", 7.0}, {"bob", "dave", 5.0}, {"bob", "411", 2.0},
		{"carol", "bob", 4.0}, {"carol", "411", 1.0}, {"carol", "mom", 1.0},
	}
	week2 := [][3]any{
		{"alice", "mom", 8.0}, {"alice", "dad", 7.0}, {"alice", "pizza", 2.0}, {"alice", "gym", 1.0},
		{"bob", "carol", 6.0}, {"bob", "dave", 6.0}, {"bob", "411", 1.0},
		{"carol", "bob", 5.0}, {"carol", "411", 2.0},
	}
	g1 := mustGraph(u, 0, week1)
	g2 := mustGraph(u, 1, week2)

	const k = 3
	for _, scheme := range []graphsig.Scheme{
		graphsig.TopTalkers(),
		graphsig.UnexpectedTalkers(),
		graphsig.RandomWalk(0.1, 3),
	} {
		fmt.Printf("== scheme %s ==\n", scheme.Name())
		at, err := graphsig.ComputeSignatures(scheme, g1, k)
		if err != nil {
			log.Fatal(err)
		}
		next, err := graphsig.ComputeSignatures(scheme, g2, k)
		if err != nil {
			log.Fatal(err)
		}
		alice, _ := u.Lookup("alice")
		sig, _ := at.Get(alice)
		fmt.Printf("  σ_0(alice) = ")
		for i := range sig.Nodes {
			fmt.Printf("%s:%.3f ", u.Label(sig.Nodes[i]), sig.Weights[i])
		}
		fmt.Println()

		d := graphsig.DistSHel()
		fmt.Printf("  persistence  %s\n", graphsig.PersistenceSummary(d, at, next))
		fmt.Printf("  uniqueness   %s\n", graphsig.UniquenessSummary(d, at, 0, 1))

		// Robustness: perturb week 1 per §IV-C and compare signatures.
		perturbed, err := graphsig.PerturbGraph(g1, graphsig.PerturbOptions{
			InsertFrac: 0.1, DeleteFrac: 0.1, Seed: 7,
		})
		if err != nil {
			log.Fatal(err)
		}
		hat, err := graphsig.ComputeSignatures(scheme, perturbed, k)
		if err != nil {
			log.Fatal(err)
		}
		var sum, n float64
		for _, r := range graphsig.Robustness(d, at, hat) {
			sum += r
			n++
		}
		fmt.Printf("  robustness   %.4f (mean over %d nodes)\n\n", sum/n, int(n))
	}
}

func mustGraph(u *graphsig.Universe, index int, edges [][3]any) *graphsig.Graph {
	b := graphsig.NewGraphBuilder(u, index)
	for _, e := range edges {
		err := b.AddLabeled(e[0].(string), graphsig.PartNone, e[1].(string), graphsig.PartNone, e[2].(float64))
		if err != nil {
			log.Fatal(err)
		}
	}
	return b.Build()
}
