// Enterprise walkthrough: generate a synthetic enterprise flow capture
// (the paper's §IV-A dataset substitute), aggregate it into weekly
// communication graphs, and run the §V multiusage-detection case study —
// finding the sets of IP addresses that belong to the same individual —
// with Top Talkers signatures, scoring against the generator's hidden
// ground truth.
package main

import (
	"fmt"
	"log"
	"sort"

	"graphsig"
)

func main() {
	cfg := graphsig.DefaultEnterpriseConfig(7)
	cfg.LocalHosts = 120
	cfg.ExternalHosts = 3000
	data, err := graphsig.GenerateEnterprise(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d flow records over %d windows\n", len(data.Records), len(data.Windows))
	fmt.Printf("window 0: %s\n\n", graphsig.SummarizeGraph(data.Windows[0]))

	// The paper's recommendation for multiusage detection is TT
	// (uniqueness + robustness, Table I × Table III). Multiusage is a
	// standing condition, so we corroborate across two windows: a pair
	// counts only if it is similar in both, which suppresses chance
	// look-alikes from one window's sampling noise.
	const k = 10
	set, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), data.Windows[0], k)
	if err != nil {
		log.Fatal(err)
	}
	set1, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), data.Windows[1], k)
	if err != nil {
		log.Fatal(err)
	}

	// Ground truth: which labels belong to one individual. Detectors
	// never see this; we use it only to score.
	siblings := map[graphsig.NodeID]map[graphsig.NodeID]bool{}
	groups := 0
	for _, labels := range data.Truth.MultiusageSets() {
		groups++
		var ids []graphsig.NodeID
		for _, l := range labels {
			if id, ok := data.Universe.Lookup(l); ok {
				ids = append(ids, id)
			}
		}
		for _, a := range ids {
			for _, b := range ids {
				if a != b {
					if siblings[a] == nil {
						siblings[a] = map[graphsig.NodeID]bool{}
					}
					siblings[a][b] = true
				}
			}
		}
	}

	d := graphsig.DistSHel()
	pairs0, err := graphsig.DetectMultiusage(d, set, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	pairs1, err := graphsig.DetectMultiusage(d, set1, 0.8)
	if err != nil {
		log.Fatal(err)
	}
	// Keep pairs similar in both windows, scored by their worse window.
	later := map[[2]graphsig.NodeID]float64{}
	for _, p := range pairs1 {
		later[[2]graphsig.NodeID{p.A, p.B}] = p.Dist
	}
	var pairs []graphsig.SimilarPair
	for _, p := range pairs0 {
		if d1, ok := later[[2]graphsig.NodeID{p.A, p.B}]; ok {
			if d1 > p.Dist {
				p.Dist = d1
			}
			pairs = append(pairs, p)
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Dist < pairs[j].Dist })
	fmt.Printf("multiusage candidates corroborated in both windows: %d (ground truth: %d groups)\n", len(pairs), groups)

	// Precision at the top of the ranked list: how many of the most
	// similar pairs are true siblings?
	for _, cut := range []int{5, 10, 20} {
		if cut > len(pairs) {
			break
		}
		hits := 0
		for _, p := range pairs[:cut] {
			if siblings[p.A][p.B] {
				hits++
			}
		}
		fmt.Printf("  precision@%-2d = %.2f\n", cut, float64(hits)/float64(cut))
	}

	fmt.Println("\ntop candidates:")
	for i, p := range pairs {
		if i == 10 {
			break
		}
		mark := " "
		if siblings[p.A][p.B] {
			mark = "*"
		}
		fmt.Printf("  %s %-14s %-14s dist=%.4f\n", mark,
			data.Universe.Label(p.A), data.Universe.Label(p.B), p.Dist)
	}
	fmt.Println("(* = confirmed by ground truth)")
}
