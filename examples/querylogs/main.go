// Query-log walkthrough: generate the synthetic data-warehouse query
// log (the paper's second §IV-A dataset), inject a behaviour change for
// a few users — one analyst taking over another's duties — and detect
// the change with the anomaly-detection application (§II-D), which the
// framework says needs persistence and robustness → the RWR scheme.
package main

import (
	"fmt"
	"log"
	"sort"

	"graphsig"
)

func main() {
	data, err := graphsig.GenerateQueryLog(graphsig.DefaultQueryLogConfig(11))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query log: %d tuples, %d windows\n", len(data.Tuples), len(data.Windows))
	fmt.Printf("window 0: %s\n\n", graphsig.SummarizeGraph(data.Windows[0]))

	// Inject anomalies into window 1: three users swap their entire
	// table-access behaviour with three other users (e.g. handover of
	// duties). From each label's point of view this is an abrupt
	// behaviour change.
	w0, w1 := data.Windows[0], data.Windows[1]
	candidates := []string{"user0005", "user0123", "user0456"}
	partners := []string{"user0700", "user0701", "user0702"}
	edges := w1.Edges()
	swap := map[graphsig.NodeID]graphsig.NodeID{}
	for i := range candidates {
		a, ok1 := data.Universe.Lookup(candidates[i])
		b, ok2 := data.Universe.Lookup(partners[i])
		if !ok1 || !ok2 {
			log.Fatalf("user labels missing from universe")
		}
		swap[a], swap[b] = b, a
	}
	for i := range edges {
		if to, ok := swap[edges[i].From]; ok {
			edges[i].From = to
		}
	}
	w1swapped, err := graphsig.GraphFromEdges(data.Universe, w1.Index(), edges)
	if err != nil {
		log.Fatal(err)
	}

	// Anomaly detection per §II-D: compute self-persistence for every
	// user and report the unusually small values.
	const k = 3
	scheme := graphsig.RandomWalk(0.1, 3)
	at, err := graphsig.ComputeSignatures(scheme, w0, k)
	if err != nil {
		log.Fatal(err)
	}
	next, err := graphsig.ComputeSignatures(scheme, w1swapped, k)
	if err != nil {
		log.Fatal(err)
	}
	anomalies, population, err := graphsig.DetectAnomalies(graphsig.DistSHel(), at, next, 2.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("population self-persistence: %s\n", population)
	fmt.Printf("anomalies flagged (z < -2): %d\n", len(anomalies))

	injected := map[string]bool{}
	for _, l := range append(append([]string{}, candidates...), partners...) {
		injected[l] = true
	}
	sort.Slice(anomalies, func(i, j int) bool { return anomalies[i].Persistence < anomalies[j].Persistence })
	caught := 0
	for _, a := range anomalies {
		label := data.Universe.Label(a.Node)
		mark := " "
		if injected[label] {
			mark = "*"
			caught++
		}
		fmt.Printf("  %s %-10s persistence=%.4f z=%.2f\n", mark, label, a.Persistence, a.ZScore)
	}
	fmt.Printf("(* = injected swap; %d of %d injected labels caught)\n", caught, len(injected))
}
