// De-anonymization walkthrough: the paper's third motivating
// application (§I, "Analysis of Data Anonymization"). A telephone
// operator releases an "anonymized" week of call records with every
// subscriber number replaced; an analyst holding signatures from an
// earlier, identified week matches the anonymized numbers back to
// individuals — demonstrating how little protection bare re-labelling
// offers when communication structure persists.
package main

import (
	"fmt"
	"log"

	"graphsig"
)

func main() {
	cfg := graphsig.DefaultTelephoneConfig(31)
	cfg.Subscribers = 400
	cfg.Businesses = 15
	cfg.Communities = 20
	cfg.Windows = 2
	data, err := graphsig.GenerateTelephone(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("call graph: %s\n", graphsig.SummarizeGraph(data.Windows[0]))

	// Anonymize window 1: a random bijection over 15% of subscribers
	// (say, a released dataset masks a pool of persons of interest
	// while the rest of the graph — their contacts, the businesses —
	// stays identified). Full-graph anonymization is much stronger:
	// when every neighbour's label is also scrambled there is nothing
	// for one-hop signatures to match against.
	w0, w1 := data.Windows[0], data.Windows[1]
	var subscribers []graphsig.NodeID
	for _, v := range w0.ActiveSources() {
		if int(v) < cfg.Subscribers {
			subscribers = append(subscribers, v)
		}
	}
	anonWin, mapping, err := graphsig.SimulateMasquerade(w1, subscribers, 0.15, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anonymized %d of %d subscriber labels in window 1\n\n", len(mapping.Mapping), len(subscribers))

	// The analyst's attack, per scheme: reference signatures from the
	// identified window, anonymized signatures from the released one,
	// greedy injective matching.
	truth := map[graphsig.NodeID]graphsig.NodeID{}
	for v, u := range mapping.Mapping {
		truth[u] = v
	}
	const k = 6
	d := graphsig.DistSHel()
	for _, scheme := range []graphsig.Scheme{
		graphsig.TopTalkers(),
		graphsig.UnexpectedTalkers(),
		graphsig.RandomWalk(0.1, 3),
	} {
		reference, err := graphsig.ComputeSignaturesFor(
			graphsig.ParallelScheme(scheme, 0), w0, subscribers, k)
		if err != nil {
			log.Fatal(err)
		}
		anonymized, err := graphsig.ComputeSignatures(
			graphsig.ParallelScheme(scheme, 0), anonWin, k)
		if err != nil {
			log.Fatal(err)
		}
		// Restrict the attack to the masked labels: everything else is
		// already identified.
		var maskedSources []graphsig.NodeID
		var maskedSigs []graphsig.Signature
		for i, v := range anonymized.Sources {
			if _, masked := truth[v]; masked {
				maskedSources = append(maskedSources, v)
				maskedSigs = append(maskedSigs, anonymized.Sigs[i])
			}
		}
		maskedSet, err := graphsig.NewSignatureSet(anonymized.Scheme, anonymized.Window, maskedSources, maskedSigs)
		if err != nil {
			log.Fatal(err)
		}
		matches, err := graphsig.DeAnonymize(d, reference, maskedSet, true)
		if err != nil {
			log.Fatal(err)
		}
		acc, err := graphsig.DeAnonymizationAccuracy(matches, truth)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s re-identified %.1f%% of masked subscribers\n", scheme.Name(), 100*acc)
	}
	fmt.Println("\nconclusion: persistent communication structure defeats naive label scrubbing;")
	fmt.Println("publishing communication graphs requires stronger anonymization than relabelling.")
}
