// Streaming walkthrough (§VI): when the communication graph is too
// large to store, signatures can be extracted from a single pass over
// the edge stream using per-node sketches — a Count-Min sketch per
// source for edge weights (Top Talkers) plus an FM sketch per
// destination for in-degrees (Unexpected Talkers). This example streams
// a generated flow capture through both extractors and compares the
// approximate signatures with the exact ones.
package main

import (
	"fmt"
	"log"

	"graphsig"
)

func main() {
	cfg := graphsig.DefaultEnterpriseConfig(23)
	cfg.LocalHosts = 120
	cfg.ExternalHosts = 3000
	cfg.Windows = 1
	data, err := graphsig.GenerateEnterprise(cfg)
	if err != nil {
		log.Fatal(err)
	}
	w := data.Windows[0]
	fmt.Printf("streaming %d flow records (%d distinct edges)\n\n", len(data.Records), w.NumEdges())

	tt := graphsig.NewStreamTT(graphsig.StreamConfig{Seed: 1})
	ut := graphsig.NewStreamUT(graphsig.StreamConfig{Seed: 1})
	for _, r := range data.Records {
		src, ok1 := data.Universe.Lookup(r.Src)
		dst, ok2 := data.Universe.Lookup(r.Dst)
		if !ok1 || !ok2 {
			log.Fatalf("record references unknown label")
		}
		if err := tt.Observe(src, dst, float64(r.Sessions)); err != nil {
			log.Fatal(err)
		}
		if err := ut.Observe(src, dst, float64(r.Sessions)); err != nil {
			log.Fatal(err)
		}
	}

	const k = 10
	exactTT, err := graphsig.ComputeSignatures(graphsig.TopTalkers(), w, k)
	if err != nil {
		log.Fatal(err)
	}
	exactUT, err := graphsig.ComputeSignatures(graphsig.UnexpectedTalkers(), w, k)
	if err != nil {
		log.Fatal(err)
	}

	d := graphsig.DistSHel()
	report := func(name string, exact *graphsig.SignatureSet, streamed func(graphsig.NodeID, int) (graphsig.Signature, error)) {
		var distSum, recall float64
		n := 0
		for i, v := range exact.Sources {
			approx, err := streamed(v, k)
			if err != nil {
				log.Fatal(err)
			}
			exactSig := exact.Sigs[i]
			distSum += d.Dist(exactSig, approx)
			if exactSig.Len() > 0 {
				hits := 0
				for _, u := range exactSig.Nodes {
					if approx.Contains(u) {
						hits++
					}
				}
				recall += float64(hits) / float64(exactSig.Len())
			} else {
				recall++
			}
			n++
		}
		fmt.Printf("%-3s: mean Dist(exact, streamed) = %.4f, member recall = %.4f over %d sources\n",
			name, distSum/float64(n), recall/float64(n), n)
	}
	report("TT", exactTT, tt.Signature)
	report("UT", exactUT, ut.Signature)

	// The Pipeline ties it together: records stream in, per-window
	// signature sets come out, and no graph is ever materialized.
	pcfg := graphsig.PipelineConfig{
		WindowSize: cfg.WindowLength,
		Origin:     cfg.Origin,
		Classify:   graphsig.PrefixClassifier("10."),
		TCPOnly:    true,
		K:          k,
		Scheme:     "tt",
		Sketch:     graphsig.StreamConfig{Seed: 1},
	}
	sets, err := graphsig.RunPipeline(pcfg, nil, data.Records)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\npipeline emitted %d window(s); window 0 carries %d signatures\n",
		len(sets), sets[0].Len())

	// Show one host side by side.
	v := exact0Source(exactTT)
	sigE, _ := exactTT.Get(v)
	sigS, err := tt.Signature(v, k)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nhost %s, exact TT vs streamed TT:\n", data.Universe.Label(v))
	fmt.Printf("  exact:    %s\n", renderSig(data.Universe, sigE))
	fmt.Printf("  streamed: %s\n", renderSig(data.Universe, sigS))
}

func exact0Source(set *graphsig.SignatureSet) graphsig.NodeID {
	return set.Sources[0]
}

func renderSig(u *graphsig.Universe, s graphsig.Signature) string {
	out := ""
	for i := range s.Nodes {
		out += fmt.Sprintf("%s:%.3f ", u.Label(s.Nodes[i]), s.Weights[i])
	}
	return out
}
