#!/bin/sh
# Tier-1 gate, shell form of `make check`: build (compile-checks the
# examples too), vet, optional staticcheck, and the full test suite
# under the race detector.
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
# staticcheck is optional tooling: run it when installed, skip quietly
# when not — CI images without it still get the full vet+race gate.
if command -v staticcheck >/dev/null 2>&1; then
	staticcheck ./...
else
	echo "check.sh: staticcheck not installed; skipping"
fi
go test -race ./...
# Pairwise-engine smoke: one iteration of the engine-vs-naive benchmarks
# under the race detector (each sub-benchmark asserts nothing by itself,
# but the engine paths they drive are covered by bit-identity property
# tests; this catches races in the sharded row execution).
go test -race -run '^$' -benchtime=1x \
	-bench 'BenchmarkPairwiseUniqueness|BenchmarkMultiusageAllPairs' .
# Both sigbench engine variants on a scaled dataset: exits non-zero if
# any engine result diverges from the naive loops (identical: false).
go run ./cmd/sigbench -experiment pairwise -scale 0.5 >/dev/null
go run ./cmd/sigbench -experiment pairwise -scale 0.5 -soa=false >/dev/null
# Throughput regression check, benchstat style: rerun the full-scale
# pairwise report pinned to one core and diff engine pairs/sec against
# the committed baseline. Warn-only — shared CI boxes are noisy — but
# the WARN lines make a >20% regression visible in the log.
pairwise_out=$(mktemp)
trap 'rm -f "$pairwise_out"' EXIT
GOMAXPROCS=1 go run ./cmd/sigbench -experiment pairwise \
	-baseline BENCH_pairwise.json >"$pairwise_out"
sed -n '/Baseline delta/,$p' "$pairwise_out"
# Observability smoke (make obs-smoke): the sigserverd replay e2e boots
# the daemon, scrapes /metrics?format=prom, validates the exposition
# with the obs line checker, and fetches a trace from /v1/traces.
go test -race -run 'TestReplayRunExits' ./cmd/sigserverd/
# Simulation smoke (make sim-smoke): the deterministic simulation
# harness replays its fixed seed set (≥10k ops, incl. fault and crash
# schedules) against the reference model under the race detector.
go test -race -run 'TestSim' ./internal/simcheck/
# Cluster + failover smoke (make cluster-smoke / failover-smoke): the
# full cluster package under the race detector — 2-shard bit-identical
# scatter-gather, degradation with a shard down, follower WAL catch-up,
# the prober state machine, and the kill-a-primary failover/promotion
# e2e. (The fault-injecting TestSimClusterFailover already ran in the
# simcheck line above.)
go test -race ./internal/cluster/...
# Federation smoke (make federate-smoke): the cluster observability
# e2es — a routed batch search must yield one stitched trace spanning
# router + shards (+ follower under failover) at GET /v1/traces/{id},
# and GET /metrics?federate=1 must serve a valid exposition whose
# cluster aggregates equal the per-shard sums. The cluster race line
# above already ran those tests; this line keeps the obs-level
# federation/trace-context property tests in the gate explicitly.
go test -race -run 'TestTraceContext|TestStartRemote|TestParseExposition|TestWriteFederated|TestFederatedHistogram' ./internal/obs/
# Segment smoke (make segment-smoke): the cold-tier e2es the race run
# above may have sampled — long-horizon restart (5x capacity served
# bit-identical to an unbounded run), crash mid-compaction, and the
# segment-mode simulation seeds — pinned explicitly in the gate.
go test -race -run 'TestServerSegment|TestHistoryHTTPParams' ./internal/server/
go test -race -run 'TestSimSegments' ./internal/simcheck/
# Fuzz smoke (make fuzz-smoke): short exploratory runs of the three
# native fuzz targets; their committed testdata corpora already replay
# as regression cases in the race run above.
go test -run '^$' -fuzz FuzzReadBinary -fuzztime 15s ./internal/netflow/
go test -run '^$' -fuzz FuzzWALReplay -fuzztime 15s ./internal/wal/
go test -run '^$' -fuzz FuzzSortedKernels -fuzztime 15s ./internal/core/
