// Package graphsig is a Go implementation of the signature framework of
// Cormode, Korn, Muthukrishnan and Wu, "On Signatures for Communication
// Graphs" (ICDE 2008).
//
// A communication graph records who communicated with whom, and how
// much, during a time window: telephone calls, IP flows, query logs,
// message boards. A *signature* σ_t(v) is a compact, top-k weighted set
// of nodes that captures node v's distinctive communication behaviour in
// window t. The framework evaluates signature schemes against three
// properties — persistence (stable across time), uniqueness (no two
// individuals match) and robustness (insensitive to noise) — and matches
// schemes to applications by the properties those applications need:
//
//   - Multiusage detection (one individual behind several labels) needs
//     uniqueness and robustness → Top Talkers.
//   - Label masquerading (an individual switching labels) needs
//     persistence and uniqueness → Random Walk with Resets.
//   - Anomaly detection (abrupt behaviour change of one label) needs
//     persistence and robustness → RWR.
//
// # Quick start
//
//	u := graphsig.NewUniverse()
//	b := graphsig.NewGraphBuilder(u, 0)
//	_ = b.AddLabeled("alice", graphsig.Part1, "search.example", graphsig.Part2, 12)
//	g := b.Build()
//
//	sigs, _ := graphsig.ComputeSignatures(graphsig.TopTalkers(), g, 10)
//	next, _ := graphsig.ComputeSignatures(graphsig.TopTalkers(), g2, 10)
//	p := graphsig.Persistence(graphsig.DistSHel(), sigs, next)
//
// The cmd/ directory ships three tools: siggen (synthetic datasets),
// sigbench (regenerate the paper's evaluation) and sigtool (ad-hoc
// signature computation and detection over flow files). The examples/
// directory holds four runnable walkthroughs.
package graphsig
