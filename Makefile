GO ?= go

.PHONY: check build vet test race bench bench-smoke obs-smoke tidy crash-test

# Tier-1 gate: everything a PR must keep green. Examples live under
# ./... so `go build`/`go vet` compile-check them too.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection and crash-recovery suite: failpoint-driven kill/
# corruption tests across the WAL, the snapshot store and the server's
# recovery path, under the race detector.
crash-test:
	$(GO) test -race ./internal/fault/ ./internal/wal/ ./internal/store/ \
		-run 'Torn|Corrupt|Crash|Failpoint|Fault|Quarantine|Interrupted'
	$(GO) test -race ./internal/server/ \
		-run 'Crash|Corrupt|Torn|SnapshotFailure|ShutdownSave|Throttled|Dedup|Retries'

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One iteration of the pairwise-engine benchmarks under the race
# detector: a cheap smoke test that the engine's parallel paths are
# race-clean and still bit-identical to the naive loops they replace.
bench-smoke:
	$(GO) test -race -run=^$$ -benchtime=1x \
		-bench 'BenchmarkPairwiseUniqueness|BenchmarkMultiusageAllPairs' .

# Observability smoke: boot sigserverd in replay mode end to end. The
# replay scrapes /metrics?format=prom, validates the exposition with
# the obs line-format checker (requiring the serving histograms), and
# fetches a trace from /v1/traces — all through the real HTTP stack.
obs-smoke:
	$(GO) test -race -run 'TestReplayRunExits' ./cmd/sigserverd/

tidy:
	gofmt -l -w .
