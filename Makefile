GO ?= go

.PHONY: check build vet test race bench tidy

# Tier-1 gate: everything a PR must keep green. Examples live under
# ./... so `go build`/`go vet` compile-check them too.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

tidy:
	gofmt -l -w .
