GO ?= go

.PHONY: check build vet test race bench tidy crash-test

# Tier-1 gate: everything a PR must keep green. Examples live under
# ./... so `go build`/`go vet` compile-check them too.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection and crash-recovery suite: failpoint-driven kill/
# corruption tests across the WAL, the snapshot store and the server's
# recovery path, under the race detector.
crash-test:
	$(GO) test -race ./internal/fault/ ./internal/wal/ ./internal/store/ \
		-run 'Torn|Corrupt|Crash|Failpoint|Fault|Quarantine|Interrupted'
	$(GO) test -race ./internal/server/ \
		-run 'Crash|Corrupt|Torn|SnapshotFailure|ShutdownSave|Throttled|Dedup|Retries'

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

tidy:
	gofmt -l -w .
