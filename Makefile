GO ?= go

.PHONY: check build vet test race bench bench-smoke obs-smoke tidy crash-test sim-smoke fuzz-smoke cluster-smoke failover-smoke federate-smoke segment-smoke

# Tier-1 gate: everything a PR must keep green. Examples live under
# ./... so `go build`/`go vet` compile-check them too.
check: build vet race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Fault-injection and crash-recovery suite: failpoint-driven kill/
# corruption tests across the WAL, the snapshot store and the server's
# recovery path, under the race detector.
crash-test:
	$(GO) test -race ./internal/fault/ ./internal/wal/ ./internal/store/ \
		-run 'Torn|Corrupt|Crash|Failpoint|Fault|Quarantine|Interrupted'
	$(GO) test -race ./internal/server/ \
		-run 'Crash|Corrupt|Torn|SnapshotFailure|ShutdownSave|Throttled|Dedup|Retries'

# Deterministic simulation (internal/simcheck): drives the real
# store+WAL+server through a seeded ≥10k-op schedule of ingest, search,
# snapshots, fault injection, restarts and torn-tail crashes, checked
# against an in-memory reference model. A divergence prints the seed
# and a minimized op trace; re-running the seed replays it exactly.
sim-smoke:
	$(GO) test -race -run 'TestSim' ./internal/simcheck/

# Cluster smoke: the 2-shard (+1 follower) topology tests — routed
# ingest accounting, scatter-gather search/anomaly/watchlist answers
# bit-identical to a single node over the union, partial-result
# degradation with a shard down, and WAL-shipped follower catch-up
# serving reads after the primary dies — plus the ring properties and
# the RNG-driven cluster-equivalence simulation.
cluster-smoke:
	$(GO) test -race -run 'TestCluster|TestRing' ./internal/cluster/
	$(GO) test -race -run 'TestSimCluster' ./internal/simcheck/

# Failover smoke: kill a shard primary mid-run — the health prober
# marks it down, reads fail over to the freshest follower (surfaced in
# stale_shards), the follower auto-promotes and writes resume with
# dedup continuity — plus the prober state-machine unit tests and the
# fault-injecting simulation schedules. See DESIGN.md §13.
failover-smoke:
	$(GO) test -race -v -run 'TestClusterFailoverPromotion|TestProber|TestRouterIngestHonorsRetryAfter' \
		./internal/cluster/
	$(GO) test -race -run 'TestSimClusterFailover' ./internal/simcheck/

# Federation smoke: the cluster observability e2e tests — a routed
# batch search across a 2-shard (+1 follower, failover-read) topology
# must yield ONE trace ID on every participating node, GET
# /v1/traces/{id} must stitch the segments into a single tree with the
# critical path marked, and GET /metrics?federate=1 must serve a valid
# exposition whose cluster counter aggregates equal the per-shard sums
# — plus the obs-level federation and trace-context unit/property
# tests. See DESIGN.md §15.
federate-smoke:
	$(GO) test -race -v -run 'TestClusterFederateSmoke|TestClusterStitchedFailoverTrace' \
		./internal/cluster/
	$(GO) test -race -run 'TestTraceContext|TestStartRemote|TestParseExposition|TestWriteFederated|TestFederatedHistogram' \
		./internal/obs/

# Cold-tier smoke: the tiered store's segment suite — compaction
# equivalence vs an unbounded archive, crash/fault injection at the
# segment write and commit points, quarantine-at-attach, restart
# long-horizon history/search e2e (5x capacity, bit-identical to an
# unbounded run), bitwise follower segments, and the segment-mode
# simulation seeds with the model holding the unbounded archive.
segment-smoke:
	$(GO) test -race -run 'TestSegment|TestStoreTiered|TestStoreLoadOverCapacity|TestHistoryRange' \
		./internal/segment/ ./internal/store/
	$(GO) test -race -run 'TestServerSegment|TestHistoryHTTPParams' ./internal/server/
	$(GO) test -race -run 'TestFollowerSegmentsBitwise' ./internal/cluster/
	$(GO) test -race -run 'TestSimSegments' ./internal/simcheck/

# Bounded runs of the native fuzz targets: the netflow binary codec,
# WAL frame recovery, and the merge-join distance kernels (bit-identity
# vs the naive loops). Committed corpora under testdata/fuzz/ replay as
# regression cases in the plain test suite; this also explores briefly.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz FuzzReadBinary -fuzztime 30s ./internal/netflow/
	$(GO) test -run '^$$' -fuzz FuzzWALReplay -fuzztime 30s ./internal/wal/
	$(GO) test -run '^$$' -fuzz FuzzSortedKernels -fuzztime 30s ./internal/core/

bench:
	$(GO) test -bench=. -benchmem -run=^$$ .

# One iteration of the pairwise-engine benchmarks under the race
# detector: a cheap smoke test that the engine's parallel paths are
# race-clean and still bit-identical to the naive loops they replace.
# The sigbench lines then drive both engine variants (SoA scatter and
# match-fold, each with the thresholded prefilter sweep) on a scaled
# dataset — runPairwise exits non-zero on any `identical: false`.
bench-smoke:
	$(GO) test -race -run=^$$ -benchtime=1x \
		-bench 'BenchmarkPairwiseUniqueness|BenchmarkMultiusageAllPairs' .
	$(GO) run ./cmd/sigbench -experiment pairwise -scale 0.5
	$(GO) run ./cmd/sigbench -experiment pairwise -scale 0.5 -soa=false

# Observability smoke: boot sigserverd in replay mode end to end. The
# replay scrapes /metrics?format=prom, validates the exposition with
# the obs line-format checker (requiring the serving histograms), and
# fetches a trace from /v1/traces — all through the real HTTP stack.
obs-smoke:
	$(GO) test -race -run 'TestReplayRunExits' ./cmd/sigserverd/

tidy:
	gofmt -l -w .
