package graphsig_test

import (
	"net/http/httptest"
	"testing"
	"time"

	"graphsig"
)

// TestFacadeServing exercises the serving layer through the public
// aliases only: build signature sets, archive them in a store, search,
// snapshot, and query the HTTP service end to end.
func TestFacadeServing(t *testing.T) {
	_, g0, g1 := fixtureWindows(t)
	tt := graphsig.TopTalkers()
	s0, err := graphsig.ComputeSignatures(tt, g0, 5)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := graphsig.ComputeSignatures(tt, g1, 5)
	if err != nil {
		t.Fatal(err)
	}

	st, err := graphsig.NewSignatureStore(graphsig.SignatureStoreConfig{
		Capacity: 4, Universe: g0.Universe(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Add(s0); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(s1); err != nil {
		t.Fatal(err)
	}
	hits, err := st.SearchLabel(graphsig.DistJaccard(), "h1", graphsig.StoreSearchOptions{TopK: 3, MaxDist: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(hits) == 0 {
		t.Fatal("no store hits through facade")
	}
	if got := len(st.History("h1")); got != 2 {
		t.Fatalf("h1 history has %d windows", got)
	}

	dir := t.TempDir()
	if err := st.Save(dir); err != nil {
		t.Fatal(err)
	}
	reloaded, err := graphsig.LoadSignatureStore(dir, graphsig.SignatureStoreConfig{Capacity: 4})
	if err != nil {
		t.Fatal(err)
	}
	if reloaded.Len() != 2 {
		t.Fatalf("reloaded store holds %d windows", reloaded.Len())
	}

	// The HTTP service through the facade constructor and client.
	srv, err := graphsig.NewServer(graphsig.ServerConfig{
		Stream: graphsig.PipelineConfig{
			WindowSize: time.Hour,
			Origin:     time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC),
			Classify:   graphsig.PrefixClassifier("10."),
			TCPOnly:    true,
			K:          5,
			Scheme:     "tt",
			Sketch:     graphsig.StreamConfig{Width: 512, Depth: 4, Candidates: 32, Seed: 1},
		},
		StoreCapacity: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	c := graphsig.NewServerClient(ts.URL)
	if _, err := c.Ingest([]graphsig.FlowRecord{{
		Src: "10.0.0.1", Dst: "ext", Start: time.Date(2026, 3, 2, 0, 10, 0, 0, time.UTC),
		Sessions: 2, Proto: graphsig.ProtoTCP,
	}}); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.Flush(); err != nil {
		t.Fatal(err)
	}
	h, err := c.Health()
	if err != nil {
		t.Fatal(err)
	}
	if h.Ingested != 1 || h.Windows != 1 {
		t.Fatalf("health through facade: %+v", h)
	}
}
