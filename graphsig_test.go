package graphsig_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"graphsig"
)

// TestEndToEndFlowPipeline drives the full public API path a downstream
// user follows: records → codec round trip → windows → signatures →
// properties → applications.
func TestEndToEndFlowPipeline(t *testing.T) {
	cfg := graphsig.DefaultEnterpriseConfig(99)
	cfg.LocalHosts = 40
	cfg.ExternalHosts = 600
	cfg.Communities = 4
	cfg.Windows = 2
	cfg.MultiusageIndividuals = 4
	data, err := graphsig.GenerateEnterprise(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Codec round trip through both formats.
	var text, bin bytes.Buffer
	if err := graphsig.WriteFlowsText(&text, data.Records); err != nil {
		t.Fatal(err)
	}
	if err := graphsig.WriteFlowsBinary(&bin, data.Records); err != nil {
		t.Fatal(err)
	}
	fromText, err := graphsig.ReadFlowsText(&text)
	if err != nil {
		t.Fatal(err)
	}
	if len(fromText) != len(data.Records) {
		t.Fatalf("text round trip: %d records", len(fromText))
	}
	fromBin, err := graphsig.ReadFlowsBinary(&bin)
	if err != nil {
		t.Fatal(err)
	}

	// Re-aggregate the decoded records; stats must match the
	// generator's own windows.
	windows, err := graphsig.AggregateFlows(fromBin, cfg.WindowLength, graphsig.PrefixClassifier("10."))
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != cfg.Windows {
		t.Fatalf("windows = %d", len(windows))
	}
	// Total session volume is conserved by codec + aggregation.
	var wantW, gotW float64
	for _, w := range data.Windows {
		wantW += w.TotalWeight()
	}
	for _, w := range windows {
		gotW += w.TotalWeight()
	}
	if wantW != gotW {
		t.Fatalf("weight changed through pipeline: %g vs %g", gotW, wantW)
	}

	// Signatures + properties for every paper scheme.
	for _, s := range graphsig.PaperSchemes() {
		at, err := graphsig.ComputeSignatures(s, windows[0], 10)
		if err != nil {
			t.Fatal(err)
		}
		next, err := graphsig.ComputeSignatures(s, windows[1], 10)
		if err != nil {
			t.Fatal(err)
		}
		d := graphsig.DistSHel()
		auc, err := graphsig.SelfRetrievalAUC(d, at, next)
		if err != nil {
			t.Fatal(err)
		}
		if auc < 0.5 || auc > 1 {
			t.Fatalf("%s AUC = %g", s.Name(), auc)
		}
		p := graphsig.PersistenceSummary(d, at, next)
		if p.N == 0 {
			t.Fatalf("%s: no persistence samples", s.Name())
		}
	}

	// Applications.
	tt := graphsig.TopTalkers()
	at, err := graphsig.ComputeSignatures(tt, windows[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	next, err := graphsig.ComputeSignatures(tt, windows[1], 10)
	if err != nil {
		t.Fatal(err)
	}
	d := graphsig.DistSHel()
	if _, err := graphsig.DetectMultiusage(d, at, 0.7); err != nil {
		t.Fatal(err)
	}
	delta, err := graphsig.MasqueradeDelta(d, at, next, 5)
	if err != nil {
		t.Fatal(err)
	}
	if delta <= 0 || delta >= 1 {
		t.Fatalf("δ = %g", delta)
	}
	res, err := graphsig.DetectLabelMasquerading(d, at, next, delta, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.NonSuspects)+len(res.Pairs) == 0 {
		t.Fatal("Algorithm 1 classified nothing")
	}
	if _, _, err := graphsig.DetectAnomalies(d, at, next, 2); err != nil {
		t.Fatal(err)
	}
}

// TestMasqueradeRecovery plants a masquerade via the public API and
// checks Algorithm 1 recovers a meaningful share of it.
func TestMasqueradeRecovery(t *testing.T) {
	cfg := graphsig.DefaultEnterpriseConfig(3)
	cfg.LocalHosts = 60
	cfg.ExternalHosts = 900
	cfg.Communities = 5
	cfg.Windows = 2
	cfg.MultiusageIndividuals = 2
	data, err := graphsig.GenerateEnterprise(cfg)
	if err != nil {
		t.Fatal(err)
	}
	scheme := graphsig.RandomWalk(0.1, 3)
	at, err := graphsig.ComputeSignatures(scheme, data.Windows[0], 10)
	if err != nil {
		t.Fatal(err)
	}
	cleanNext, err := graphsig.ComputeSignatures(scheme, data.Windows[1], 10)
	if err != nil {
		t.Fatal(err)
	}
	candidates := at.Sources
	masqWin, truth, err := graphsig.SimulateMasquerade(data.Windows[1], candidates, 0.1, 8)
	if err != nil {
		t.Fatal(err)
	}
	next, err := graphsig.ComputeSignatures(scheme, masqWin, 10)
	if err != nil {
		t.Fatal(err)
	}
	d := graphsig.DistSHel()
	delta, err := graphsig.MasqueradeDelta(d, at, cleanNext, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := graphsig.DetectLabelMasquerading(d, at, next, delta, 3)
	if err != nil {
		t.Fatal(err)
	}
	acc, err := graphsig.MasqueradeAccuracy(res, truth.Mapping, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if acc < 0.7 {
		t.Fatalf("masquerade accuracy %.3f below 0.7", acc)
	}
}

// TestDecayCombineAPI exercises the §III-A history combination facade.
func TestDecayCombineAPI(t *testing.T) {
	u := graphsig.NewUniverse()
	b0 := graphsig.NewGraphBuilder(u, 0)
	if err := b0.AddLabeled("a", graphsig.PartNone, "x", graphsig.PartNone, 4); err != nil {
		t.Fatal(err)
	}
	g0 := b0.Build()
	b1 := graphsig.NewGraphBuilder(u, 1)
	if err := b1.AddLabeled("a", graphsig.PartNone, "y", graphsig.PartNone, 2); err != nil {
		t.Fatal(err)
	}
	g1 := b1.Build()
	out, err := graphsig.DecayCombine([]*graphsig.Graph{g0, g1}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := u.Lookup("a")
	x, _ := u.Lookup("x")
	if got := out[1].Weight(a, x); got != 2 {
		t.Fatalf("decayed weight = %g, want 2", got)
	}
}

// TestStreamingFacade checks the §VI extractor surface.
func TestStreamingFacade(t *testing.T) {
	tt := graphsig.NewStreamTT(graphsig.StreamConfig{Seed: 5})
	ut := graphsig.NewStreamUT(graphsig.StreamConfig{Seed: 5})
	for i := 0; i < 20; i++ {
		if err := tt.Observe(1, graphsig.NodeID(10+i%3), 1); err != nil {
			t.Fatal(err)
		}
		if err := ut.Observe(1, graphsig.NodeID(10+i%3), 1); err != nil {
			t.Fatal(err)
		}
	}
	sig, err := tt.Signature(1, 2)
	if err != nil || sig.Len() != 2 {
		t.Fatalf("stream TT signature: %v %v", sig, err)
	}
	sig, err = ut.Signature(1, 2)
	if err != nil || sig.Len() != 2 {
		t.Fatalf("stream UT signature: %v %v", sig, err)
	}
}

func TestParseSchemeFacade(t *testing.T) {
	s, err := graphsig.ParseScheme("rwr3@0.1")
	if err != nil || s.Name() != "rwr3@0.1" {
		t.Fatalf("ParseScheme: %v %v", s, err)
	}
	if _, err := graphsig.ParseScheme("bogus"); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	names := []string{}
	for _, s := range graphsig.PaperSchemes() {
		names = append(names, s.Name())
	}
	if strings.Join(names, ",") != "tt,ut,rwr3@0.1,rwr5@0.1,rwr7@0.1" {
		t.Fatalf("PaperSchemes = %v", names)
	}
}

func TestQueryLogFacade(t *testing.T) {
	cfg := graphsig.DefaultQueryLogConfig(2)
	cfg.Users = 40
	cfg.Tables = 80
	cfg.Roles = 6
	cfg.Windows = 2
	data, err := graphsig.GenerateQueryLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(data.Windows) != 2 || len(data.Tuples) == 0 {
		t.Fatal("query log generation wrong")
	}
	stats := graphsig.SummarizeGraph(data.Windows[0])
	if stats.Edges == 0 {
		t.Fatal("empty query graph")
	}
}

func TestAggregateFlowsWindowing(t *testing.T) {
	base := time.Date(2026, 3, 2, 0, 0, 0, 0, time.UTC)
	records := []graphsig.FlowRecord{
		{Src: "10.0.0.1", Dst: "e1", Start: base, Sessions: 1, Proto: 6},
		{Src: "10.0.0.1", Dst: "e1", Start: base.Add(36 * time.Hour), Sessions: 1, Proto: 6},
	}
	windows, err := graphsig.AggregateFlows(records, 24*time.Hour, graphsig.PrefixClassifier("10."))
	if err != nil {
		t.Fatal(err)
	}
	if len(windows) != 2 {
		t.Fatalf("windows = %d", len(windows))
	}
}
