package graphsig

// Serving layer: the windowed signature store and the sigserverd HTTP
// service around it. These aliases expose the online subsystem to
// external users the same way the batch and streaming APIs are exposed
// in graphsig.go.

import (
	"graphsig/internal/obs"
	"graphsig/internal/server"
	"graphsig/internal/store"
)

type (
	// SignatureStore is a goroutine-safe bounded archive of the last N
	// windows' signature sets over a shared Universe.
	SignatureStore = store.Store
	// SignatureStoreConfig sizes a SignatureStore and its optional LSH
	// search prefilter.
	SignatureStoreConfig = store.Config
	// StoreSearchOptions parameterizes a nearest-signature search.
	StoreSearchOptions = store.SearchOptions
	// StoreHit is one nearest-signature search result.
	StoreHit = store.Hit
	// StoreHistoryEntry is one archived window of a label's history.
	StoreHistoryEntry = store.HistoryEntry

	// SignatureServer is the HTTP signature service: streaming ingest
	// into a SignatureStore plus search, history, watchlist and anomaly
	// endpoints.
	SignatureServer = server.Server
	// ServerConfig parameterizes a SignatureServer.
	ServerConfig = server.Config
	// ServerClient is the typed HTTP client for a running server
	// (also the transport behind `sigtool client`).
	ServerClient = server.Client
	// ServerRecovery reports what NewServer reconstructed from disk
	// (snapshot restored/quarantined, WAL replay statistics).
	ServerRecovery = server.Recovery

	// MetricsRegistry is the observability registry every serving layer
	// records into: counters, gauges and log-bucketed histograms,
	// rendered as flat JSON or Prometheus text (see SignatureServer's
	// GET /metrics). Library users embedding a SignatureStore directly
	// can pass their own via SignatureStoreConfig.Registry.
	MetricsRegistry = obs.Registry
	// LatencyHistogram is a lock-free log-bucketed histogram with
	// p50/p90/p99 quantile estimates.
	LatencyHistogram = obs.Histogram
	// RequestTracer mints per-request traces with named child spans; a
	// bounded ring of recent traces is served at GET /v1/traces.
	RequestTracer = obs.Tracer
	// TraceSnapshot is one archived trace (ID, duration, spans).
	TraceSnapshot = obs.TraceSnapshot
)

// NewMetricsRegistry builds an empty observability registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// Float64 returns a pointer to v, for optional ServerConfig fields
// such as WatchMaxDist.
func Float64(v float64) *float64 { return server.Float64(v) }

// NewSignatureStore builds an empty store.
func NewSignatureStore(cfg SignatureStoreConfig) (*SignatureStore, error) {
	return store.New(cfg)
}

// LoadSignatureStore rebuilds a store from a snapshot directory written
// by SignatureStore.Save.
func LoadSignatureStore(dir string, cfg SignatureStoreConfig) (*SignatureStore, error) {
	return store.Load(dir, cfg)
}

// NewServer builds the signature service; serve its Handler() with any
// http.Server (see cmd/sigserverd for the full daemon).
func NewServer(cfg ServerConfig) (*SignatureServer, error) {
	return server.New(cfg)
}

// NewServerClient returns a client for a server at base, e.g.
// "http://127.0.0.1:8787".
func NewServerClient(base string) *ServerClient {
	return server.NewClient(base)
}
